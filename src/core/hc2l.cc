#include "core/hc2l.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "common/section_file.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/index_format.h"
#include "core/query_common.h"
#include "partition/balanced_cut.h"
#include "partition/shortcuts.h"
#include "search/dijkstra.h"

namespace hc2l {

namespace {

/// Encodes a 64-bit distance into a 32-bit label entry. Finite values must
/// stay below 2^31 so that any finite pair-sum is strictly smaller than
/// sentinel + anything; Query() exploits this to avoid per-entry branches.
uint32_t EncodeLabelDistance(Dist d) {
  if (d == kInfDist) return Hc2lIndex::kUnreachableLabel;
  HC2L_CHECK_LT(d, Dist{1} << 31);
  return static_cast<uint32_t>(d);
}

/// Non-aborting variant for the rebuild/repair walk: a server-driven weight
/// update must surface encoding overflow as a Status, never a CHECK abort
/// (the walk mutates a disposable standby clone, so flag-and-finish is
/// safe). The value written for an overflowed entry is irrelevant — the
/// whole walk result is discarded once the flag is set.
uint32_t EncodeLabelDistanceOrFlag(Dist d, std::atomic<bool>* overflow) {
  if (d == kInfDist) return Hc2lIndex::kUnreachableLabel;
  if (d >= (Dist{1} << 31)) {
    overflow->store(true, std::memory_order_relaxed);
    return Hc2lIndex::kUnreachableLabel;
  }
  return static_cast<uint32_t>(d);
}

/// Byte-for-byte CSR equality — the repair walk's clean-subtree oracle.
bool SameGraph(const Graph& a, const Graph& b) {
  const size_t n = a.NumVertices();
  if (n != b.NumVertices() || a.NumArcs() != b.NumArcs()) return false;
  for (Vertex v = 0; v < n; ++v) {
    const std::span<const Arc> na = a.Neighbors(v);
    const std::span<const Arc> nb = b.Neighbors(v);
    if (na.size() != nb.size()) return false;
    for (size_t i = 0; i < na.size(); ++i) {
      if (!(na[i] == nb[i])) return false;
    }
  }
  return true;
}

// --- Route-hint machinery (OSRM-style provenance, recorded at build time
// so query-time unpacking is pure array walking). Every arc of every
// subgraph of the recursion carries an *annotation*: the first real
// core-graph hop (a global core vertex id) of the shortest core path the
// arc stands for. A real arc's annotation is its own endpoint; a shortcut
// arc inherits the annotation of the parent-side witness arc starting its
// through-the-cut path. The label hint of (vertex, hub) is then the
// annotation of the first witness arc of the hub's Dijkstra — by
// induction, the first hop of a real shortest core path toward the hub.

/// Per-subgraph arc-offset prefix array: arc j of Neighbors(v) is entry
/// arc_base[v] + j of the annotation vector (the graphs do not expose
/// their CSR offsets).
std::vector<size_t> ArcBases(const Graph& g) {
  const size_t n = g.NumVertices();
  std::vector<size_t> base(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    base[v + 1] = base[v] + g.Neighbors(v).size();
  }
  return base;
}

/// Root annotations over the core graph itself: every arc is a real core
/// edge, so its first hop is its own head.
std::vector<Vertex> RootAnnotations(const Graph& core) {
  std::vector<Vertex> ann;
  ann.reserve(core.NumArcs());
  const size_t n = core.NumVertices();
  for (Vertex v = 0; v < n; ++v) {
    for (const Arc& a : core.Neighbors(v)) ann.push_back(a.to);
  }
  return ann;
}

/// Annotation of the first witness arc out of `v` under the distance field
/// `dist` (a shortest-path tree rooted elsewhere): the first CSR arc with
/// w + dist[head] == dist[v]. kInvalidVertex when v is the root itself,
/// unreachable, or (corrupt inputs) no witness exists.
Vertex WitnessAnnotation(const Graph& g, const std::vector<Vertex>& ann,
                         const std::vector<size_t>& arc_base, Vertex v,
                         const std::vector<Dist>& dist) {
  const Dist dv = dist[v];
  if (dv == 0 || dv == kInfDist) return kInvalidVertex;
  const std::span<const Arc> arcs = g.Neighbors(v);
  for (size_t j = 0; j < arcs.size(); ++j) {
    const Arc& a = arcs[j];
    if (dist[a.to] != kInfDist && dist[a.to] + a.weight == dv) {
      return ann[arc_base[v] + j];
    }
  }
  return kInvalidVertex;
}

/// Derives a child subgraph's per-arc annotations from its parent's. A real
/// child arc copies the parent arc's annotation; a shortcut arc resolves to
/// the witness annotation of its through-the-cut path (first cut vertex in
/// rank order realizing the shortcut weight — the same deterministic choice
/// on every rebuild). Shortcut weights are strictly below any parent path
/// for the pair and builders collapse parallel edges to minimum weight, so
/// the pair lookup is unambiguous.
std::vector<Vertex> DeriveChildAnnotations(
    const Graph& parent, const std::vector<Vertex>& parent_ann,
    const std::vector<size_t>& parent_arc_base,
    const std::vector<Edge>& shortcuts,
    const std::vector<std::vector<Dist>>& dist_from_cut,
    const Graph& child_graph, const std::vector<Vertex>& to_parent) {
  struct ShortcutAnn {
    uint64_t key;  // (min parent id) << 32 | max parent id
    Vertex from_lo = kInvalidVertex;
    Vertex from_hi = kInvalidVertex;
  };
  std::vector<ShortcutAnn> sc_ann;
  sc_ann.reserve(shortcuts.size());
  for (const Edge& e : shortcuts) {
    ShortcutAnn entry;
    const Vertex lo = std::min(e.u, e.v);
    const Vertex hi = std::max(e.u, e.v);
    entry.key = (static_cast<uint64_t>(lo) << 32) | hi;
    for (const std::vector<Dist>& dist : dist_from_cut) {
      if (AddDist(dist[e.u], dist[e.v]) != e.weight) continue;
      entry.from_lo =
          WitnessAnnotation(parent, parent_ann, parent_arc_base, lo, dist);
      entry.from_hi =
          WitnessAnnotation(parent, parent_ann, parent_arc_base, hi, dist);
      break;
    }
    sc_ann.push_back(entry);
  }
  std::sort(sc_ann.begin(), sc_ann.end(),
            [](const ShortcutAnn& a, const ShortcutAnn& b) {
              return a.key < b.key;
            });

  std::vector<Vertex> ann;
  ann.reserve(child_graph.NumArcs());
  const size_t n = child_graph.NumVertices();
  for (Vertex cv = 0; cv < n; ++cv) {
    const Vertex pu = to_parent[cv];
    for (const Arc& a : child_graph.Neighbors(cv)) {
      const Vertex pv = to_parent[a.to];
      const Vertex lo = std::min(pu, pv);
      const Vertex hi = std::max(pu, pv);
      const uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
      const auto it = std::lower_bound(
          sc_ann.begin(), sc_ann.end(), key,
          [](const ShortcutAnn& s, uint64_t k) { return s.key < k; });
      if (it != sc_ann.end() && it->key == key) {
        ann.push_back(pu == lo ? it->from_lo : it->from_hi);
        continue;
      }
      // A real arc: copy the parent arc's annotation (one arc per pair —
      // the builders collapse parallel edges).
      const std::span<const Arc> parcs = parent.Neighbors(pu);
      Vertex copied = kInvalidVertex;
      for (size_t j = 0; j < parcs.size(); ++j) {
        if (parcs[j].to == pv) {
          copied = parent_ann[parent_arc_base[pu] + j];
          break;
        }
      }
      ann.push_back(copied);
    }
  }
  return ann;
}

}  // namespace

/// Recursive construction of the balanced tree hierarchy and the tail-pruned
/// labelling (Algorithms 1-5), over the core graph.
class Hc2lBuilder {
 public:
  Hc2lBuilder(const Graph& core, const Hc2lOptions& options)
      : options_(options), pool_(options.num_threads) {
    const size_t n = core.NumVertices();
    hierarchy_.node_of_vertex_.assign(n, UINT32_MAX);
    hierarchy_.vertex_code_.assign(n, kRootCode);
    label_data_.resize(n);
    label_lens_.resize(n);
    if (options_.route_hints) {
      hint_data_.resize(n);
      hint_lens_.resize(n);
    }

    std::vector<Vertex> identity(n);
    for (Vertex v = 0; v < n; ++v) identity[v] = v;
    const int32_t root = NewNode(kRootCode, -1);
    Graph root_copy = core;  // recursion consumes its subgraph
    std::vector<Vertex> root_ann =
        options_.route_hints ? RootAnnotations(core) : std::vector<Vertex>{};
    BuildNode(std::move(root_copy), std::move(identity), std::move(root_ann),
              root, kRootCode);
  }

  /// Moves results into the index.
  void Finish(Hc2lIndex* index) {
    const size_t n = label_data_.size();
    size_t total_entries = 0;
    for (size_t v = 0; v < n; ++v) total_entries += label_data_[v].size();
    index->hierarchy_ = std::move(hierarchy_);
    index->labels_.BuildFrom(&label_data_, &label_lens_);
    if (options_.route_hints) {
      index->hints_.BuildFrom(&hint_data_, &hint_lens_);
    }

    index->stats_.num_tree_nodes = index->hierarchy_.NumNodes();
    index->stats_.tree_height = index->hierarchy_.Height();
    index->stats_.max_cut_size = index->hierarchy_.MaxCutSize();
    index->stats_.avg_cut_size = index->hierarchy_.AvgCutSize();
    index->stats_.num_shortcuts = shortcut_count_.load();
    index->stats_.label_entries = total_entries;
    index->stats_.label_bytes =
        total_entries * sizeof(uint32_t) + index->labels_.MetadataBytes();
    index->stats_.lca_bytes = index->hierarchy_.LcaStorageBytes();
  }

 private:
  int32_t NewNode(TreeCode code, int32_t parent) {
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    hierarchy_.nodes_.push_back(HierarchyNode{code, parent, -1, -1, {}});
    return static_cast<int32_t>(hierarchy_.nodes_.size() - 1);
  }

  /// Runs fn(i) for i in [0, count) on the shared pool.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
    pool_.ParallelFor(count, fn);
  }

  /// Ranks `cut` (ascending Eq. 6 score, ties by global id), runs the
  /// prefix-tracking Dijkstras of Algorithm 5, emits one (tail-pruned)
  /// distance array per subgraph vertex, and registers the cut vertices with
  /// the hierarchy node. Returns the per-cut-vertex distance vectors (rank
  /// order) for shortcut computation.
  std::vector<std::vector<Dist>> LabelCutSet(const Graph& sub,
                                             std::vector<Vertex>* cut,
                                             const std::vector<Vertex>& to_global,
                                             const std::vector<Vertex>& ann,
                                             int32_t node_idx, TreeCode code) {
    const size_t n = sub.NumVertices();
    const size_t m = cut->size();

    if (m == 0) {
      // Disconnected split: the empty cut still contributes one (empty)
      // array per subtree vertex so that label levels stay aligned.
      for (Vertex v = 0; v < n; ++v) {
        label_lens_[to_global[v]].push_back(0);
        if (options_.route_hints) hint_lens_[to_global[v]].push_back(0);
      }
      return {};
    }

    // Rank cut vertices by Eq. 6 / Algorithm 5 lines 2-5: ascending count of
    // vertices whose shortest path from the cut vertex passes through
    // another cut vertex ("most coverable last").
    if (options_.tail_pruning && m > 1) {
      std::vector<uint8_t> in_cut(n, 0);
      for (Vertex v : *cut) in_cut[v] = 1;
      std::vector<uint64_t> score(m, 0);
      ParallelFor(m, [&](size_t i) {
        const DistAndPruneResult r = DistAndPrune(sub, (*cut)[i], in_cut);
        uint64_t covered = 0;
        for (Vertex v = 0; v < n; ++v) covered += r.via[v];
        score[i] = covered;
      });
      ApplyCoverabilityOrder(cut, score, to_global);
    } else {
      // Deterministic order without ranking.
      std::sort(cut->begin(), cut->end(), [&](Vertex a, Vertex b) {
        return to_global[a] < to_global[b];
      });
    }

    // Prefix-tracking Dijkstras (Algorithm 5 lines 6-7); the tracked set of
    // v_i is {v_0 .. v_{i-1}}. The serial/parallel mask dispatch is the
    // shared RunPrefixMaskedSearches helper.
    std::vector<DistAndPruneResult> results(m);
    RunPrefixMaskedSearches(
        pool_, options_.tail_pruning, *cut, n,
        [&](size_t i, const std::vector<uint8_t>& mask) {
          results[i] = DistAndPrune(sub, (*cut)[i], mask);
        });

    // Labels with tail pruning (Algorithm 5 lines 8-10), plus — when the
    // index records route hints — the annotation of the first witness arc
    // toward each hub, stored in lockstep with the distance entries.
    const std::vector<size_t> arc_base =
        options_.route_hints ? ArcBases(sub) : std::vector<size_t>{};
    for (Vertex v = 0; v < n; ++v) {
      size_t k = 0;
      for (size_t i = 0; i < m; ++i) {
        if (results[i].via[v] == 0) k = i;
      }
      auto& data = label_data_[to_global[v]];
      for (size_t i = 0; i <= k; ++i) {
        data.push_back(EncodeLabelDistance(results[i].dist[v]));
      }
      label_lens_[to_global[v]].push_back(static_cast<uint32_t>(k + 1));
      if (options_.route_hints) {
        auto& hints = hint_data_[to_global[v]];
        for (size_t i = 0; i <= k; ++i) {
          hints.push_back(
              WitnessAnnotation(sub, ann, arc_base, v, results[i].dist));
        }
        hint_lens_[to_global[v]].push_back(static_cast<uint32_t>(k + 1));
      }
    }

    // Register cut vertices (global ids, rank order) with the node. The
    // nodes_ vector may be reallocated concurrently by sibling subtrees, so
    // the node reference is taken under the lock; per-vertex arrays are
    // fixed-size and each element is written by exactly one node.
    {
      std::lock_guard<std::mutex> lock(nodes_mutex_);
      HierarchyNode& node = hierarchy_.nodes_[node_idx];
      node.cut.reserve(m);
      for (Vertex v : *cut) node.cut.push_back(to_global[v]);
    }
    for (Vertex v : *cut) {
      const Vertex global = to_global[v];
      hierarchy_.node_of_vertex_[global] = static_cast<uint32_t>(node_idx);
      hierarchy_.vertex_code_[global] = code;
    }

    std::vector<std::vector<Dist>> dist_from_cut(m);
    for (size_t i = 0; i < m; ++i) {
      dist_from_cut[i] = std::move(results[i].dist);
    }
    return dist_from_cut;
  }

  void BuildNode(Graph sub, std::vector<Vertex> to_global,
                 std::vector<Vertex> ann, int32_t node_idx, TreeCode code) {
    const size_t n = sub.NumVertices();
    const uint32_t depth = TreeCodeDepth(code);

    std::vector<Vertex> cut;
    BalancedCutResult bc;
    bool is_leaf = n <= options_.leaf_size || depth >= kMaxTreeDepth;
    if (!is_leaf) {
      bc = BalancedCut(sub, options_.beta);
      // Degenerate splits (everything became the cut) terminate recursion.
      is_leaf = bc.part_a.empty() && bc.part_b.empty();
    }
    if (is_leaf) {
      cut.resize(n);
      for (Vertex v = 0; v < n; ++v) cut[v] = v;
      LabelCutSet(sub, &cut, to_global, ann, node_idx, code);
      return;
    }

    cut = std::move(bc.cut);
    const std::vector<std::vector<Dist>> dist_from_cut =
        LabelCutSet(sub, &cut, to_global, ann, node_idx, code);

    // Prepare both child subgraphs (Algorithm 3 shortcuts keep each side
    // distance-preserving), then recurse — in parallel when the budget
    // allows. Child annotations must be derived here, while the parent
    // subgraph and its cut distances are still alive.
    struct Child {
      Graph graph;
      std::vector<Vertex> to_global;
      std::vector<Vertex> ann;
      int32_t node = -1;
      TreeCode code = kRootCode;
    };
    std::vector<Child> children;
    const std::vector<size_t> arc_base =
        options_.route_hints ? ArcBases(sub) : std::vector<size_t>{};
    const std::vector<Vertex>* parts[2] = {&bc.part_a, &bc.part_b};
    for (int side = 0; side < 2; ++side) {
      const std::vector<Vertex>& part = *parts[side];
      if (part.empty()) continue;
      ShortcutResult sc = ComputeShortcuts(sub, cut, part, dist_from_cut);
      shortcut_count_.fetch_add(sc.shortcuts.size(),
                                std::memory_order_relaxed);
      Subgraph child_sub = InducedSubgraph(sub, part, sc.shortcuts);
      Child child;
      if (options_.route_hints) {
        child.ann =
            DeriveChildAnnotations(sub, ann, arc_base, sc.shortcuts,
                                   dist_from_cut, child_sub.graph,
                                   child_sub.to_parent);
      }
      child.graph = std::move(child_sub.graph);
      child.to_global.reserve(part.size());
      for (Vertex v : child_sub.to_parent) {
        child.to_global.push_back(to_global[v]);
      }
      child.code = TreeCodeChild(code, side);
      child.node = NewNode(child.code, node_idx);
      {
        std::lock_guard<std::mutex> lock(nodes_mutex_);
        (side == 0 ? hierarchy_.nodes_[node_idx].left
                   : hierarchy_.nodes_[node_idx].right) = child.node;
      }
      children.push_back(std::move(child));
    }

    // Release the parent subgraph before descending.
    sub = Graph();
    to_global.clear();
    to_global.shrink_to_fit();
    ann.clear();
    ann.shrink_to_fit();

    if (children.size() == 2 && pool_.NumThreads() > 1) {
      // Hand the left subtree to the pool and recurse into the right one
      // here; Wait() helps run queued subtree tasks, so no thread idles.
      auto left = std::make_shared<Child>(std::move(children[0]));
      const ThreadPool::TaskHandle task = pool_.Submit([this, left]() {
        BuildNode(std::move(left->graph), std::move(left->to_global),
                  std::move(left->ann), left->node, left->code);
      });
      BuildNode(std::move(children[1].graph), std::move(children[1].to_global),
                std::move(children[1].ann), children[1].node,
                children[1].code);
      pool_.Wait(task);
    } else {
      for (Child& child : children) {
        BuildNode(std::move(child.graph), std::move(child.to_global),
                  std::move(child.ann), child.node, child.code);
      }
    }
  }

  const Hc2lOptions options_;
  ThreadPool pool_;
  std::mutex nodes_mutex_;
  std::atomic<uint64_t> shortcut_count_{0};
  BalancedTreeHierarchy hierarchy_;
  // Per-core-vertex label accumulators: concatenated level arrays + lengths.
  std::vector<std::vector<uint32_t>> label_data_;
  std::vector<std::vector<uint32_t>> label_lens_;
  // Route-hint accumulators, in lockstep with the label ones (empty unless
  // options_.route_hints).
  std::vector<std::vector<uint32_t>> hint_data_;
  std::vector<std::vector<uint32_t>> hint_lens_;
};

Hc2lIndex Hc2lIndex::Build(const Graph& g, const Hc2lOptions& options) {
  HC2L_CHECK_GT(options.beta, 0.0);
  HC2L_CHECK_LE(options.beta, 0.5);
  Timer timer;
  Hc2lIndex index;
  index.stats_.num_vertices = g.NumVertices();

  const Graph* core = &g;
  if (options.contract_degree_one) {
    index.contraction_ = std::make_unique<DegreeOneContraction>(g);
    core = &index.contraction_->CoreGraph();
    index.stats_.num_contracted = index.contraction_->NumContracted();
  }
  index.stats_.num_core_vertices = core->NumVertices();

  Hc2lBuilder builder(*core, options);
  builder.Finish(&index);
  index.stats_.build_seconds = timer.Seconds();
  return index;
}

Dist Hc2lIndex::CoreQuery(Vertex s, Vertex t, uint64_t* hubs_scanned) const {
  if (s == t) return 0;
  const uint32_t level = hierarchy_.LcaLevel(s, t);
  const uint32_t s_idx = labels_.base[s] + level;
  const uint32_t t_idx = labels_.base[t] + level;
  const uint32_t* a = labels_.arena.data() + labels_.level_start[s_idx];
  const uint32_t* b = labels_.arena.data() + labels_.level_start[t_idx];
  const uint32_t len = std::min(labels_.level_len[s_idx],
                                labels_.level_len[t_idx]);
  // Both operand arrays are cache-line aligned; hint their first lines while
  // the remaining scalar setup retires.
  simd::PrefetchArray(a, len * sizeof(uint32_t));
  simd::PrefetchArray(b, len * sizeof(uint32_t));
  if (hubs_scanned != nullptr) *hubs_scanned += len;
  const uint32_t best = simd::MinPlusPadded(a, b, len);
  return best >= kUnreachableLabel ? kInfDist : best;
}

Dist Hc2lIndex::Query(Vertex s, Vertex t) const {
  return QueryCountingHubs(s, t, nullptr);
}

Dist Hc2lIndex::QueryCountingHubs(Vertex s, Vertex t,
                                  uint64_t* hubs_scanned) const {
  HC2L_CHECK_LT(s, stats_.num_vertices);
  HC2L_CHECK_LT(t, stats_.num_vertices);
  if (s == t) return 0;
  if (contraction_ == nullptr) return CoreQuery(s, t, hubs_scanned);

  const Vertex root_s = contraction_->RootCoreId(s);
  const Vertex root_t = contraction_->RootCoreId(t);
  if (root_s == root_t) return contraction_->SameTreeDistance(s, t);
  const Dist core = CoreQuery(root_s, root_t, hubs_scanned);
  // Inf-propagating sums like the directed twin: a plain uint64 add would
  // wrap an unreachable core distance (or a defensively infinite detour)
  // past infinity into a small finite answer.
  return AddDist(AddDist(contraction_->DistToRoot(s), core),
                 contraction_->DistToRoot(t));
}

Status Hc2lIndex::PrepareRelabel(const Graph& g, const Graph** core_out) {
  if (g.NumVertices() != stats_.num_vertices) {
    return Status::InvalidArgument(
        "updated graph has " + std::to_string(g.NumVertices()) +
        " vertices but the index was built over " +
        std::to_string(stats_.num_vertices) +
        " (RebuildLabels requires identical topology)");
  }
  // Refresh the contraction distances (the removal order is deterministic in
  // topology, so on an identical-topology graph the core vertex set — and
  // its numbering — is unchanged). A differing core size means the caller
  // passed a graph with different pendant structure: reject it *before* the
  // stored contraction is replaced, so the index stays queryable.
  const Graph* core = &g;
  if (contraction_ != nullptr) {
    auto refreshed = std::make_unique<DegreeOneContraction>(g);
    if (refreshed->CoreGraph().NumVertices() != stats_.num_core_vertices) {
      return Status::InvalidArgument(
          "updated graph's pendant-tree structure differs from the indexed "
          "graph (" +
          std::to_string(refreshed->CoreGraph().NumVertices()) + " vs " +
          std::to_string(stats_.num_core_vertices) +
          " core vertices); RebuildLabels requires identical topology");
    }
    contraction_ = std::move(refreshed);
    core = &contraction_->CoreGraph();
  }
  *core_out = core;
  return Status::Ok();
}

ThreadPool& Hc2lIndex::ResolvePool(uint32_t num_threads) {
  const uint32_t resolved =
      num_threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                       : num_threads;
  if (pool_ == nullptr || pool_->NumThreads() != resolved) {
    pool_ = std::make_shared<ThreadPool>(resolved);
  }
  return *pool_;
}

Status Hc2lIndex::RebuildLabels(const Graph& g, bool tail_pruning,
                                uint32_t num_threads) {
  const Graph* core = nullptr;
  if (Status s = PrepareRelabel(g, &core); !s.ok()) return s;
  return RelabelWalk(*core, /*scoped=*/false, tail_pruning,
                     ResolvePool(num_threads));
}

Status Hc2lIndex::RepairLabels(const Graph& g,
                               std::span<const EdgeDelta> deltas,
                               bool tail_pruning, uint32_t num_threads) {
  if (HC2L_FAULT_SHOULD_FAIL("index.repair")) {
    return Status::Internal("injected index-repair fault");
  }
  for (const EdgeDelta& d : deltas) {
    if (d.u >= g.NumVertices() || d.v >= g.NumVertices() || d.u == d.v) {
      return Status::InvalidArgument(
          "edge delta {" + std::to_string(d.u) + ", " + std::to_string(d.v) +
          "} does not name an edge of the updated graph");
    }
  }
  // Scoping requires a warm cache produced with the same tail-pruning flag:
  // the cache (and the labels it vouches for) must come from a previous
  // relabel walk — Build()'s own recursion order is not comparable, and
  // Load() does not persist the cache.
  const bool scoped = !repair_cache_.empty() &&
                      repair_cache_.size() == hierarchy_.nodes_.size() &&
                      repair_cache_tail_pruning_ == tail_pruning;
  const Graph* core = nullptr;
  if (Status s = PrepareRelabel(g, &core); !s.ok()) return s;

  if (scoped && contraction_ != nullptr) {
    // Pendant-only fast path: no delta touches a core-core edge, so the
    // core graph — and with it every shortcut and label array — is
    // unchanged; the contraction refresh above already absorbed the new
    // pendant weights.
    bool touches_core = false;
    for (const EdgeDelta& d : deltas) {
      if (contraction_->InCore(d.u) && contraction_->InCore(d.v)) {
        touches_core = true;
        break;
      }
    }
    if (!touches_core) {
      repair_stats_ = RepairStats{};
      repair_stats_.reused_entries = stats_.label_entries;
      return Status::Ok();
    }
  }
  return RelabelWalk(*core, scoped, tail_pruning, ResolvePool(num_threads));
}

Status Hc2lIndex::RelabelWalk(const Graph& core, bool scoped,
                              bool tail_pruning, ThreadPool& pool) {
  Timer timer;
  const size_t n = core.NumVertices();
  auto& nodes = hierarchy_.nodes_;
  if (!scoped) repair_cache_.assign(nodes.size(), NodeRepairCache{});

  // Fresh label accumulators. A hint-carrying index recomputes its route
  // hints in the same walk (RepairLabels must keep them consistent); a
  // hint-less index stays hint-less, keeping repair bit-identical to a
  // rebuild in both modes.
  const bool hints = HasRouteHints();
  std::vector<std::vector<uint32_t>> label_data(n);
  std::vector<std::vector<uint32_t>> label_lens(n);
  std::vector<std::vector<uint32_t>> hint_data(hints ? n : 0);
  std::vector<std::vector<uint32_t>> hint_lens(hints ? n : 0);
  uint64_t shortcut_count = 0;
  std::atomic<bool> overflow{false};

  // Top-down walk over the stored hierarchy, recomputing distances.
  //
  // Weight changes can make the recomputed shortcut sets differ from the
  // original build's, and a *new* shortcut may connect the two sides of a
  // stored descendant cut — breaking the separator invariant the labels
  // depend on (the paper's "with some adjustments for shortcuts", §5.4).
  // Before labelling each node we therefore scan its subgraph for edges
  // crossing the stored cut and move one endpoint of each such edge into
  // the cut (the same repair Algorithm 2 applies to direct S-T edges),
  // updating the vertex's hierarchy assignment accordingly.
  //
  // The walk proceeds level by level so the per-node recomputation can run
  // on the pool: same-level nodes own disjoint vertex sets, so their label
  // writes, hierarchy repairs (confined to the node's own subtree) and
  // global_to_child slots never alias, and per-vertex label arrays are still
  // appended in root-to-leaf (level) order — the rebuilt index is
  // bit-identical to the serial walk's.
  // A scoped (repair) walk additionally cuts off every child whose
  // recomputed inputs — the induced subgraph plus the local-to-global id
  // map — equal the cached inputs of the previous walk: the walk is
  // deterministic in exactly those inputs, so the whole subtree's label
  // arrays (levels >= the child's depth) are provably unchanged and are
  // spliced verbatim out of the current store. A changed edge weight
  // anywhere inside the child's subgraph, a changed shortcut set, or a
  // separator repair that moved a vertex all surface as an input mismatch,
  // so the comparison needs no separate delta bookkeeping.
  struct Frame {
    Graph sub;
    std::vector<Vertex> to_global;
    std::vector<Vertex> ann;  // per-arc route annotations (hint mode only)
    int32_t node;
  };
  struct FrameOut {
    std::vector<Frame> children;
    std::vector<int32_t> clean_subtrees;  // child node ids cut off as clean
    uint64_t shortcuts = 0;
    uint64_t recomputed = 0;  // label entries recomputed at this node
    uint64_t reused = 0;      // label entries spliced from the old store
  };
  std::vector<Frame> level;
  {
    std::vector<Vertex> identity(n);
    for (Vertex v = 0; v < n; ++v) identity[v] = v;
    std::vector<Vertex> root_ann =
        hints ? RootAnnotations(core) : std::vector<Vertex>{};
    level.push_back({core, std::move(identity), std::move(root_ann), 0});
  }
  std::vector<Vertex> global_to_child(n, kInvalidVertex);
  const auto process_node = [&](Frame frame, FrameOut* out) {
    const int32_t node_idx = frame.node;
    const size_t sub_n = frame.sub.NumVertices();

    for (size_t i = 0; i < frame.to_global.size(); ++i) {
      global_to_child[frame.to_global[i]] = static_cast<Vertex>(i);
    }

    // Side of each subgraph vertex: 0 = left subtree, 1 = right subtree,
    // 2 = this node's cut. Membership is derived from the (kept-up-to-date)
    // vertex codes: v lies in child c's subtree iff LcaLevel(code(v),
    // code(c)) == depth(c).
    const int32_t left = nodes[node_idx].left;
    const int32_t right = nodes[node_idx].right;
    std::vector<uint8_t> side(sub_n, 2);
    auto assign_sides = [&]() {
      for (Vertex v = 0; v < sub_n; ++v) {
        const TreeCode code = hierarchy_.vertex_code_[frame.to_global[v]];
        side[v] = 2;
        for (int which = 0; which < 2; ++which) {
          const int32_t child = which == 0 ? left : right;
          if (child < 0) continue;
          const TreeCode child_code = nodes[child].code;
          if (TreeCodeLcaLevel(code, child_code) == TreeCodeDepth(child_code)) {
            side[v] = static_cast<uint8_t>(which);
            break;
          }
        }
      }
    };
    assign_sides();

    // Separator repair: move one endpoint of every cut-crossing edge into
    // this node's cut.
    if (left >= 0 || right >= 0) {
      bool repaired = true;
      while (repaired) {
        repaired = false;
        for (Vertex x = 0; x < sub_n && !repaired; ++x) {
          if (side[x] != 0) continue;
          for (const Arc& a : frame.sub.Neighbors(x)) {
            if (side[a.to] != 1) continue;
            // Edge x(left) - a.to(right): reassign x to this node's cut.
            const Vertex global_x = frame.to_global[x];
            const uint32_t old_node = hierarchy_.node_of_vertex_[global_x];
            auto& old_cut = nodes[old_node].cut;
            old_cut.erase(std::find(old_cut.begin(), old_cut.end(), global_x));
            nodes[node_idx].cut.push_back(global_x);
            hierarchy_.node_of_vertex_[global_x] =
                static_cast<uint32_t>(node_idx);
            hierarchy_.vertex_code_[global_x] = nodes[node_idx].code;
            side[x] = 2;
            repaired = true;
            break;
          }
        }
      }
    }

    const std::vector<Vertex>& cut_global = nodes[node_idx].cut;
    const size_t m = cut_global.size();
    std::vector<Vertex> cut_child(m);
    for (size_t i = 0; i < m; ++i) {
      cut_child[i] = global_to_child[cut_global[i]];
      HC2L_CHECK_NE(cut_child[i], kInvalidVertex);
    }

    // Prefix-tracking Dijkstras in the stored (+ repaired) rank order.
    std::vector<DistAndPruneResult> results(m);
    {
      std::vector<uint8_t> mask(sub_n, 0);
      const std::vector<uint8_t> empty_mask(sub_n, 0);
      for (size_t i = 0; i < m; ++i) {
        results[i] = DistAndPrune(frame.sub, cut_child[i],
                                  tail_pruning ? mask : empty_mask);
        mask[cut_child[i]] = 1;
      }
    }
    const std::vector<size_t> arc_base =
        hints ? ArcBases(frame.sub) : std::vector<size_t>{};
    if (m == 0) {
      for (Vertex v = 0; v < sub_n; ++v) {
        label_lens[frame.to_global[v]].push_back(0);
        if (hints) hint_lens[frame.to_global[v]].push_back(0);
      }
    } else {
      for (Vertex v = 0; v < sub_n; ++v) {
        size_t k = 0;
        for (size_t i = 0; i < m; ++i) {
          if (results[i].via[v] == 0) k = i;
        }
        auto& data = label_data[frame.to_global[v]];
        for (size_t i = 0; i <= k; ++i) {
          data.push_back(EncodeLabelDistanceOrFlag(results[i].dist[v],
                                                   &overflow));
        }
        label_lens[frame.to_global[v]].push_back(
            static_cast<uint32_t>(k + 1));
        out->recomputed += k + 1;
        if (hints) {
          auto& hdata = hint_data[frame.to_global[v]];
          for (size_t i = 0; i <= k; ++i) {
            hdata.push_back(WitnessAnnotation(frame.sub, frame.ann, arc_base,
                                              v, results[i].dist));
          }
          hint_lens[frame.to_global[v]].push_back(
              static_cast<uint32_t>(k + 1));
        }
      }
    }

    std::vector<std::vector<Dist>> dist_from_cut(m);
    for (size_t i = 0; i < m; ++i) {
      dist_from_cut[i] = std::move(results[i].dist);
    }
    for (int which = 0; which < 2; ++which) {
      const int32_t child = which == 0 ? left : right;
      if (child < 0) continue;
      std::vector<Vertex> part;
      for (Vertex v = 0; v < sub_n; ++v) {
        if (side[v] == which) part.push_back(v);
      }
      if (part.empty()) continue;
      ShortcutResult sc =
          ComputeShortcuts(frame.sub, cut_child, part, dist_from_cut);
      out->shortcuts += sc.shortcuts.size();
      Subgraph child_sub = InducedSubgraph(frame.sub, part, sc.shortcuts);
      std::vector<Vertex> child_to_global;
      child_to_global.reserve(part.size());
      for (Vertex v : child_sub.to_parent) {
        child_to_global.push_back(frame.to_global[v]);
      }
      std::vector<Vertex> child_ann;
      if (hints) {
        child_ann = DeriveChildAnnotations(frame.sub, frame.ann, arc_base,
                                           sc.shortcuts, dist_from_cut,
                                           child_sub.graph,
                                           child_sub.to_parent);
      }

      NodeRepairCache& cache = repair_cache_[child];
      // A byte-identical child subgraph does NOT imply identical hints:
      // ancestor weight changes can switch which equal-distance witness the
      // annotations picked, so hint mode also compares the annotations.
      if (scoped && child_to_global == cache.to_global &&
          SameGraph(child_sub.graph, cache.sub) &&
          (!hints || child_ann == cache.ann)) {
        // Clean subtree: identical inputs reproduce identical labels, so
        // every descendant level array is spliced verbatim out of the
        // current store instead of recursing. The cache entry stays valid.
        const uint32_t child_depth = TreeCodeDepth(nodes[child].code);
        const uint32_t* arena = labels_.arena.data();
        const uint32_t* hint_arena = hints ? hints_.arena.data() : nullptr;
        for (const Vertex gv : child_to_global) {
          const uint32_t base = labels_.base[gv];
          const uint32_t arrays = labels_.base[gv + 1] - base;
          auto& data = label_data[gv];
          for (uint32_t k = child_depth; k < arrays; ++k) {
            const uint32_t start = labels_.level_start[base + k];
            const uint32_t len = labels_.level_len[base + k];
            data.insert(data.end(), arena + start, arena + start + len);
            label_lens[gv].push_back(len);
            out->reused += len;
            if (hints) {
              // The hint store shares the label store's offset tables.
              auto& hdata = hint_data[gv];
              hdata.insert(hdata.end(), hint_arena + start,
                           hint_arena + start + len);
              hint_lens[gv].push_back(len);
            }
          }
        }
        out->clean_subtrees.push_back(child);
        continue;
      }
      cache.sub = child_sub.graph;
      cache.to_global = child_to_global;
      cache.ann = child_ann;
      cache.shortcuts_into = sc.shortcuts.size();
      out->children.push_back({std::move(child_sub.graph),
                               std::move(child_to_global),
                               std::move(child_ann), child});
    }
  };
  std::vector<int32_t> clean_roots;
  uint64_t dirty_nodes = 0;
  uint64_t recomputed_entries = 0;
  uint64_t reused_entries = 0;
  while (!level.empty()) {
    const size_t count = level.size();
    std::vector<FrameOut> outs(count);
    pool.ParallelFor(count, [&](size_t fi) {
      process_node(std::move(level[fi]), &outs[fi]);
    });
    level.clear();
    dirty_nodes += count;
    for (size_t fi = 0; fi < count; ++fi) {
      shortcut_count += outs[fi].shortcuts;
      recomputed_entries += outs[fi].recomputed;
      reused_entries += outs[fi].reused;
      clean_roots.insert(clean_roots.end(), outs[fi].clean_subtrees.begin(),
                         outs[fi].clean_subtrees.end());
      for (Frame& child : outs[fi].children) {
        level.push_back(std::move(child));
      }
    }
  }

  // Shortcuts inside clean subtrees were not re-walked; their cached
  // per-node counts complete the total (each cut-off child's own incoming
  // shortcut set was recounted by its parent above, so only strict
  // descendants are summed here).
  for (const int32_t clean_root : clean_roots) {
    std::vector<int32_t> stack{clean_root};
    while (!stack.empty()) {
      const int32_t node = stack.back();
      stack.pop_back();
      for (const int32_t child : {nodes[node].left, nodes[node].right}) {
        if (child < 0) continue;
        shortcut_count += repair_cache_[child].shortcuts_into;
        stack.push_back(child);
      }
    }
  }

  if (overflow.load(std::memory_order_relaxed)) {
    // The hierarchy may already hold this walk's separator repairs and the
    // cache is partially overwritten: the index is in an unspecified state
    // (the header tells callers to repair a disposable clone). Invalidate
    // the cache so a retained index at least never scopes against it.
    repair_cache_.clear();
    return Status::OutOfRange(
        "updated weights push a shortest-path distance past 2^31, beyond "
        "the 32-bit label encoding; refusing to produce wrapped labels");
  }

  // Re-flatten into a fresh aligned arena.
  uint64_t total_entries = 0;
  for (size_t v = 0; v < n; ++v) total_entries += label_data[v].size();
  labels_.BuildFrom(&label_data, &label_lens);
  if (hints) hints_.BuildFrom(&hint_data, &hint_lens);

  stats_.num_shortcuts = shortcut_count;
  stats_.label_entries = total_entries;
  stats_.label_bytes =
      total_entries * sizeof(uint32_t) + labels_.MetadataBytes();
  // Cut repairs may have moved vertices between nodes.
  stats_.tree_height = hierarchy_.Height();
  stats_.max_cut_size = hierarchy_.MaxCutSize();
  stats_.avg_cut_size = hierarchy_.AvgCutSize();
  stats_.build_seconds = timer.Seconds();

  repair_cache_tail_pruning_ = tail_pruning;
  repair_stats_ = RepairStats{};
  repair_stats_.recomputed_entries = recomputed_entries;
  repair_stats_.reused_entries = reused_entries;
  repair_stats_.dirty_nodes = dirty_nodes;
  repair_stats_.clean_subtrees = clean_roots.size();
  repair_stats_.full_rebuild = !scoped;
  repair_stats_.seconds = timer.Seconds();
  return Status::Ok();
}

Hc2lIndex Hc2lIndex::Clone() const {
  Hc2lIndex out;
  out.stats_ = stats_;
  if (contraction_ != nullptr) {
    out.contraction_ = std::make_unique<DegreeOneContraction>(*contraction_);
  }
  out.hierarchy_ = hierarchy_;
  out.labels_.base = labels_.base;
  out.labels_.level_start = labels_.level_start;
  out.labels_.level_len = labels_.level_len;
  out.labels_.arena.Reset(labels_.arena.size());
  std::memcpy(out.labels_.arena.data(), labels_.arena.data(),
              labels_.arena.SizeBytes());
  if (HasRouteHints()) {
    out.hints_.base = hints_.base;
    out.hints_.level_start = hints_.level_start;
    out.hints_.level_len = hints_.level_len;
    out.hints_.arena.Reset(hints_.arena.size());
    std::memcpy(out.hints_.arena.data(), hints_.arena.data(),
                hints_.arena.SizeBytes());
  }
  out.repair_cache_ = repair_cache_;
  out.repair_cache_tail_pruning_ = repair_cache_tail_pruning_;
  out.repair_stats_ = repair_stats_;
  out.pool_ = pool_;
  return out;
}

bool Hc2lIndex::IdenticalTo(const Hc2lIndex& other) const {
  const Hc2lStats& a = stats_;
  const Hc2lStats& b = other.stats_;
  if (a.num_vertices != b.num_vertices ||
      a.num_core_vertices != b.num_core_vertices ||
      a.num_contracted != b.num_contracted || a.tree_height != b.tree_height ||
      a.num_tree_nodes != b.num_tree_nodes ||
      a.max_cut_size != b.max_cut_size || a.avg_cut_size != b.avg_cut_size ||
      a.num_shortcuts != b.num_shortcuts ||
      a.label_entries != b.label_entries || a.label_bytes != b.label_bytes ||
      a.lca_bytes != b.lca_bytes) {
    return false;
  }
  if ((contraction_ == nullptr) != (other.contraction_ == nullptr)) {
    return false;
  }
  if (contraction_ != nullptr) {
    const DegreeOneContraction& c = *contraction_;
    const DegreeOneContraction& d = *other.contraction_;
    if (!SameGraph(c.core_, d.core_) ||
        c.num_contracted_ != d.num_contracted_ || c.core_id_ != d.core_id_ ||
        c.to_original_ != d.to_original_ ||
        c.root_core_id_ != d.root_core_id_ ||
        c.dist_to_root_ != d.dist_to_root_ || c.parent_ != d.parent_ ||
        c.parent_weight_ != d.parent_weight_ || c.depth_ != d.depth_) {
      return false;
    }
  }
  const BalancedTreeHierarchy& h = hierarchy_;
  const BalancedTreeHierarchy& i = other.hierarchy_;
  if (h.node_of_vertex_ != i.node_of_vertex_ ||
      h.vertex_code_ != i.vertex_code_ || h.nodes_.size() != i.nodes_.size()) {
    return false;
  }
  for (size_t k = 0; k < h.nodes_.size(); ++k) {
    const HierarchyNode& x = h.nodes_[k];
    const HierarchyNode& y = i.nodes_[k];
    if (x.code != y.code || x.parent != y.parent || x.left != y.left ||
        x.right != y.right || x.cut != y.cut) {
      return false;
    }
  }
  return labels_.base == other.labels_.base &&
         labels_.level_start == other.labels_.level_start &&
         labels_.level_len == other.labels_.level_len &&
         labels_.arena.size() == other.labels_.arena.size() &&
         std::memcmp(labels_.arena.data(), other.labels_.arena.data(),
                     labels_.arena.SizeBytes()) == 0 &&
         hints_.base == other.hints_.base &&
         hints_.level_start == other.hints_.level_start &&
         hints_.level_len == other.hints_.level_len &&
         hints_.arena.size() == other.hints_.arena.size() &&
         (hints_.arena.size() == 0 ||
          std::memcmp(hints_.arena.data(), other.hints_.arena.data(),
                      hints_.arena.SizeBytes()) == 0);
}

size_t Hc2lIndex::LabelSizeBytes() const { return labels_.ResidentBytes(); }

Hc2lIndex::ResolvedTargets Hc2lIndex::ResolveTargets(
    std::span<const Vertex> targets) const {
  ResolvedTargets rt;
  ResolveTargetsInto(targets, &rt);
  return rt;
}

void Hc2lIndex::ResolveTargetsInto(std::span<const Vertex> targets,
                                   ResolvedTargets* rt) const {
  const size_t n = targets.size();
  rt->original.assign(targets.begin(), targets.end());
  rt->core.resize(n);
  rt->detour.resize(n);
  rt->code.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Vertex t = targets[i];
    HC2L_CHECK_LT(t, stats_.num_vertices);
    Vertex root = t;
    Dist detour = 0;
    if (contraction_ != nullptr) {
      root = contraction_->RootCoreId(t);
      detour = contraction_->DistToRoot(t);
    }
    rt->core[i] = root;
    rt->detour[i] = detour;
    rt->code[i] = hierarchy_.CodeOf(root);
  }
}

void Hc2lIndex::BatchQueryResolved(Vertex source, const ResolvedTargets& rt,
                                   size_t begin, size_t end, Dist* out) const {
  HC2L_CHECK_LT(source, stats_.num_vertices);
  HC2L_CHECK_LE(begin, end);
  HC2L_CHECK_LE(end, rt.size());
  if (begin == end) return;

  Vertex root_s = source;
  Dist source_offset = 0;
  if (contraction_ != nullptr) {
    root_s = contraction_->RootCoreId(source);
    source_offset = contraction_->DistToRoot(source);
  }
  const TreeCode s_code = hierarchy_.CodeOf(root_s);
  const uint32_t s_base = labels_.base[root_s];

  // Pass 1 over pre-resolved targets (the shared CollectPendingTargets):
  // trivial cases answered inline, the rest collected for the level sweep.
  // Working memory is the calling thread's reusable scratch (zero
  // allocations once warm).
  QueryScratch& scratch = TlsQueryScratch();
  CollectPendingTargets(
      rt, begin, end, source, root_s, source_offset, s_code,
      contraction_ != nullptr,
      [&](Vertex t) { return contraction_->SameTreeDistance(source, t); },
      &scratch, out);
  // stats_.tree_height, not hierarchy_.Height() — that one rescans every
  // tree node, which would dwarf small batches.
  SweepPendingByLevel(labels_, labels_, s_base, stats_.tree_height, &scratch,
                      out);
}

std::vector<Dist> Hc2lIndex::BatchQuery(Vertex source,
                                        std::span<const Vertex> targets) const {
  std::vector<Dist> out(targets.size(), kInfDist);
  BatchQueryInto(source, targets, out.data());
  return out;
}

void Hc2lIndex::BatchQueryInto(Vertex source, std::span<const Vertex> targets,
                               Dist* out) const {
  if (targets.empty()) return;
  HC2L_CHECK_LT(source, stats_.num_vertices);

  // Single-call fast path: resolution fused into pass 1 (no ResolvedTargets
  // materialization — that indirection only pays off when many sources share
  // one target set, i.e. DistanceMatrix and the query engine).
  Vertex root_s = source;
  Dist source_offset = 0;
  if (contraction_ != nullptr) {
    root_s = contraction_->RootCoreId(source);
    source_offset = contraction_->DistToRoot(source);
  }
  const TreeCode s_code = hierarchy_.CodeOf(root_s);
  const uint32_t s_base = labels_.base[root_s];

  QueryScratch& scratch = TlsQueryScratch();
  scratch.pending.clear();
  scratch.level_of.clear();
  for (size_t i = 0; i < targets.size(); ++i) {
    const Vertex t = targets[i];
    HC2L_CHECK_LT(t, stats_.num_vertices);
    if (t == source) {
      out[i] = 0;
      continue;
    }
    Vertex root_t = t;
    Dist offset = source_offset;
    if (contraction_ != nullptr) {
      root_t = contraction_->RootCoreId(t);
      if (root_t == root_s) {
        out[i] = contraction_->SameTreeDistance(source, t);
        continue;
      }
      offset += contraction_->DistToRoot(t);
    }
    scratch.pending.push_back({static_cast<uint32_t>(i), root_t, offset});
    scratch.level_of.push_back(
        TreeCodeLcaLevel(s_code, hierarchy_.CodeOf(root_t)));
  }
  SweepPendingByLevel(labels_, labels_, s_base, stats_.tree_height, &scratch,
                      out);
}

std::vector<std::vector<Dist>> Hc2lIndex::DistanceMatrix(
    std::span<const Vertex> sources, std::span<const Vertex> targets) const {
  std::vector<std::vector<Dist>> matrix(
      sources.size(), std::vector<Dist>(targets.size(), kInfDist));
  if (sources.empty() || targets.empty()) return matrix;
  // Target-side resolution (contraction root, detour, tree code) is computed
  // once for the whole matrix instead of once per source; the shared tiled
  // sweep keeps each target tile's label arrays L2-resident across sources.
  TiledDistanceMatrix(*this, ResolveTargets(targets), sources, &matrix);
  return matrix;
}

std::vector<std::pair<Dist, Vertex>> Hc2lIndex::KNearest(
    Vertex source, std::span<const Vertex> candidates, size_t k) const {
  const std::vector<Dist> dists = BatchQuery(source, candidates);
  return SelectKNearest(dists, candidates, k);
}

// --- Route unpacking. CoreRoute walks the hint store from both ends: the
// argmin hub of the pair's LCA level pins a shortest path through one cut
// vertex, and the stored first-hop hints advance whichever endpoint is not
// the hub itself. Every emitted hop is a real core edge (the annotations
// propagate first *real* hops through shortcuts), so the walk needs no
// graph and does O(path length) label scans.

Status Hc2lIndex::CoreRoute(Vertex cs, Vertex ct,
                            std::vector<Vertex>* out) const {
  out->clear();
  const size_t core_n = labels_.base.size() - 1;
  std::vector<Vertex> back;  // suffix toward ct, collected in reverse
  Vertex s = cs;
  Vertex t = ct;
  out->push_back(s);
  size_t steps = 0;
  while (s != t) {
    // Each iteration advances one hop along a shortest (hence simple) path,
    // so exceeding the vertex count proves the hints are inconsistent.
    if (++steps > core_n + 1) {
      return Status::Internal(
          "route unpacking exceeded the path-length bound (inconsistent "
          "hint store)");
    }
    const uint32_t level = hierarchy_.LcaLevel(s, t);
    const uint32_t s_idx = labels_.base[s] + level;
    const uint32_t t_idx = labels_.base[t] + level;
    const uint32_t* ds = labels_.arena.data() + labels_.level_start[s_idx];
    const uint32_t* dt = labels_.arena.data() + labels_.level_start[t_idx];
    const uint32_t len =
        std::min(labels_.level_len[s_idx], labels_.level_len[t_idx]);
    uint64_t best = UINT64_MAX;
    uint32_t best_i = UINT32_MAX;
    for (uint32_t i = 0; i < len; ++i) {
      if (ds[i] == kUnreachableLabel || dt[i] == kUnreachableLabel) continue;
      const uint64_t sum = uint64_t{ds[i]} + dt[i];
      if (sum < best) {
        best = sum;
        best_i = i;
      }
    }
    if (best_i == UINT32_MAX) {
      return Status::Internal(
          "route unpacking found no common hub for a reachable pair");
    }
    if (ds[best_i] > 0) {
      // Step the source end toward the hub.
      const Vertex hint =
          hints_.arena.data()[hints_.level_start[s_idx] + best_i];
      if (hint >= core_n) {
        return Status::Internal("route hint out of range");
      }
      s = hint;
      out->push_back(s);
    } else {
      // s *is* the hub; step the target end toward it instead. dt > 0 here
      // (both zero would mean s == t).
      const Vertex hint =
          hints_.arena.data()[hints_.level_start[t_idx] + best_i];
      if (hint >= core_n) {
        return Status::Internal("route hint out of range");
      }
      back.push_back(t);
      t = hint;
    }
  }
  out->insert(out->end(), back.rbegin(), back.rend());
  return Status::Ok();
}

Status Hc2lIndex::ExpandRoute(Vertex s, Vertex t, Dist weight,
                              const std::vector<Vertex>& core_path,
                              RoutePath* out) const {
  out->vertices.clear();
  out->weight = weight;
  if (core_path.empty()) {
    return Status::Internal("empty core path for a reachable pair");
  }
  if (contraction_ == nullptr) {
    out->vertices = core_path;
    return Status::Ok();
  }
  // s's pendant chain down to (excluding) its root, the core path mapped to
  // original ids, then t's chain reversed back up from its root.
  const DegreeOneContraction& c = *contraction_;
  for (Vertex v = s; c.depth_[v] > 0; v = c.parent_[v]) {
    out->vertices.push_back(v);
  }
  for (const Vertex cv : core_path) {
    out->vertices.push_back(c.to_original_[cv]);
  }
  std::vector<Vertex> tail;
  for (Vertex v = t; c.depth_[v] > 0; v = c.parent_[v]) {
    tail.push_back(v);
  }
  out->vertices.insert(out->vertices.end(), tail.rbegin(), tail.rend());
  return Status::Ok();
}

Status Hc2lIndex::Route(Vertex s, Vertex t, RoutePath* out) const {
  HC2L_CHECK_LT(s, stats_.num_vertices);
  HC2L_CHECK_LT(t, stats_.num_vertices);
  out->vertices.clear();
  out->weight = kInfDist;
  if (s == t) {
    out->vertices.push_back(s);
    out->weight = 0;
    return Status::Ok();
  }
  if (!HasRouteHints()) {
    return Status::FailedPrecondition(
        "index carries no route hints (built with route_hints = false, or "
        "loaded from a distance-only HC2L0002 file); routes need a "
        "graph-backed fallback unpacker");
  }
  if (contraction_ != nullptr) {
    const Vertex root_s = contraction_->RootCoreId(s);
    const Vertex root_t = contraction_->RootCoreId(t);
    if (root_s == root_t) {
      // Same pendant tree: the unique simple path climbs both sides to the
      // in-tree LCA (always reachable — the tree is connected).
      const DegreeOneContraction& c = *contraction_;
      out->weight = c.SameTreeDistance(s, t);
      std::vector<Vertex> down;
      Vertex a = s;
      Vertex b = t;
      while (c.depth_[a] > c.depth_[b]) {
        out->vertices.push_back(a);
        a = c.parent_[a];
      }
      while (c.depth_[b] > c.depth_[a]) {
        down.push_back(b);
        b = c.parent_[b];
      }
      while (a != b) {
        out->vertices.push_back(a);
        a = c.parent_[a];
        down.push_back(b);
        b = c.parent_[b];
      }
      out->vertices.push_back(a);
      out->vertices.insert(out->vertices.end(), down.rbegin(), down.rend());
      return Status::Ok();
    }
    const Dist core_d = CoreQuery(root_s, root_t, nullptr);
    if (core_d == kInfDist) return Status::Ok();
    const Dist total = AddDist(AddDist(contraction_->DistToRoot(s), core_d),
                               contraction_->DistToRoot(t));
    std::vector<Vertex> core_path;
    if (Status st = CoreRoute(root_s, root_t, &core_path); !st.ok()) {
      return st;
    }
    return ExpandRoute(s, t, total, core_path, out);
  }
  const Dist d = CoreQuery(s, t, nullptr);
  if (d == kInfDist) return Status::Ok();
  std::vector<Vertex> core_path;
  if (Status st = CoreRoute(s, t, &core_path); !st.ok()) return st;
  return ExpandRoute(s, t, d, core_path, out);
}

Status Hc2lIndex::Routes(Vertex s, Vertex t, size_t k,
                         std::vector<RoutePath>* out) const {
  out->clear();
  if (k == 0) return Status::Ok();
  RoutePath first;
  if (Status st = Route(s, t, &first); !st.ok()) return st;
  if (first.vertices.empty()) return Status::Ok();  // unreachable pair
  out->push_back(std::move(first));
  if (out->size() >= k || s == t) return Status::Ok();

  Vertex cs = s;
  Vertex ct = t;
  Dist offset = 0;
  if (contraction_ != nullptr) {
    cs = contraction_->RootCoreId(s);
    ct = contraction_->RootCoreId(t);
    // One pendant tree admits exactly one simple path.
    if (cs == ct) return Status::Ok();
    offset =
        AddDist(contraction_->DistToRoot(s), contraction_->DistToRoot(t));
  }

  // Alternative candidates are the other separator hubs of the pair's LCA
  // level: routing via hub i costs ds[i] + dt[i] (>= the optimum), and the
  // cut of the LCA node lists the hubs in exactly the label entries' rank
  // order.
  const uint32_t level = hierarchy_.LcaLevel(cs, ct);
  const uint32_t s_idx = labels_.base[cs] + level;
  const uint32_t t_idx = labels_.base[ct] + level;
  const uint32_t* ds = labels_.arena.data() + labels_.level_start[s_idx];
  const uint32_t* dt = labels_.arena.data() + labels_.level_start[t_idx];
  int32_t node = static_cast<int32_t>(hierarchy_.NodeOf(cs));
  while (TreeCodeDepth(hierarchy_.Node(node).code) > level) {
    node = hierarchy_.Node(node).parent;
    if (node < 0) {
      return Status::Internal("LCA climb fell off the hierarchy root");
    }
  }
  const std::vector<Vertex>& cut = hierarchy_.Node(node).cut;
  uint32_t len =
      std::min(labels_.level_len[s_idx], labels_.level_len[t_idx]);
  len = std::min(len, static_cast<uint32_t>(cut.size()));
  std::vector<std::pair<uint64_t, uint32_t>> candidates;
  for (uint32_t i = 0; i < len; ++i) {
    if (ds[i] == kUnreachableLabel || dt[i] == kUnreachableLabel) continue;
    candidates.emplace_back(uint64_t{ds[i]} + dt[i], i);
  }
  std::sort(candidates.begin(), candidates.end());

  std::unordered_set<Vertex> used((*out)[0].vertices.begin(),
                                  (*out)[0].vertices.end());
  for (const auto& [sum, i] : candidates) {
    if (out->size() >= k) break;
    const Vertex hub = cut[i];
    const Vertex hub_orig =
        contraction_ != nullptr ? contraction_->OriginalId(hub) : hub;
    // Plateaux-style dedup: a via hub already on a selected route can only
    // reproduce a path through it.
    if (used.count(hub_orig) != 0) continue;
    std::vector<Vertex> core_path;
    std::vector<Vertex> second;
    if (Status st = CoreRoute(cs, hub, &core_path); !st.ok()) return st;
    if (Status st = CoreRoute(hub, ct, &second); !st.ok()) return st;
    core_path.insert(core_path.end(), second.begin() + 1, second.end());
    // The two legs may overlap; a non-simple detour is never a useful
    // alternative.
    std::unordered_set<Vertex> on_path;
    bool simple = true;
    for (const Vertex v : core_path) {
      if (!on_path.insert(v).second) {
        simple = false;
        break;
      }
    }
    if (!simple) continue;
    RoutePath alt;
    if (Status st = ExpandRoute(s, t, AddDist(offset, sum), core_path, &alt);
        !st.ok()) {
      return st;
    }
    bool dup = false;
    for (const RoutePath& r : *out) {
      if (r.vertices == alt.vertices) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    for (const Vertex v : alt.vertices) used.insert(v);
    out->push_back(std::move(alt));
  }
  return Status::Ok();
}

// On-disk formats (src/core/index_format.h): a hint-less index writes the
// legacy format 2 (kHc2lIndexMagic) — stats, optional contraction,
// hierarchy, label store — so files stay readable by older builds. A
// hint-carrying index writes the sectioned format 4 (kHc2lIndexMagicV4):
// the same body with the arenas lifted out into their own 64-byte-aligned
// sections, so OpenMode::kMmap can use them in place. Format 3 files
// (V4's predecessor, arenas inline) remain loadable. The helpers live in
// common/binary_io.h and common/section_file.h, shared with the directed
// index; byte-level spec in docs/format.md.
Status Hc2lIndex::Save(const std::string& path) const {
  io::FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const auto write_contraction = [&](std::FILE* out) {
    const uint8_t has_contraction = contraction_ != nullptr ? 1 : 0;
    bool ok = io::WriteValue(out, has_contraction);
    if (ok && has_contraction) {
      const DegreeOneContraction& c = *contraction_;
      ok = io::WriteVector(out, c.core_id_) &&
           io::WriteVector(out, c.to_original_) &&
           io::WriteVector(out, c.root_core_id_) &&
           io::WriteVector(out, c.dist_to_root_) &&
           io::WriteVector(out, c.parent_) &&
           io::WriteVector(out, c.parent_weight_) &&
           io::WriteVector(out, c.depth_);
      const uint64_t contracted = c.num_contracted_;
      ok = ok && io::WriteValue(out, contracted);
    }
    return ok;
  };

  bool ok;
  if (!HasRouteHints()) {
    ok = io::WriteValue(f.get(), kHc2lIndexMagic) &&
         io::WriteValue(f.get(), stats_) && write_contraction(f.get()) &&
         hierarchy_.WriteTo(f.get()) && io::WriteLabelStore(f.get(), labels_);
  } else {
    io::SectionWriter w(f.get());
    const auto write_arena = [&](size_t index, uint64_t id,
                                 const LabelArena& arena) {
      return w.Begin(index, id) &&
             (arena.size() == 0 ||
              io::WritePod(f.get(), arena.data(), arena.SizeBytes())) &&
             w.End(index);
    };
    // The hint store mirrors the label store's shape (a class invariant the
    // loader rebuilds by sharing), so one counts record and one offsets
    // section cover both stores, and both arena sections have equal sizes.
    HC2L_CHECK_EQ(hints_.arena.size(), labels_.arena.size());
    ok = w.Start(kHc2lIndexMagicV4, 4) && w.Begin(0, io::kSectionMeta) &&
         io::WriteValue(f.get(), stats_) && write_contraction(f.get()) &&
         hierarchy_.WriteTo(f.get()) &&
         io::WriteLabelStoreCounts(f.get(), labels_) && w.End(0) &&
         w.Begin(1, io::kSectionLabelOffsets) &&
         io::WriteLabelStoreOffsets(f.get(), labels_) && w.End(1) &&
         write_arena(2, io::kSectionLabelArena, labels_.arena) &&
         write_arena(3, io::kSectionHintArena, hints_.arena) && w.Finish();
  }
  if (!ok) {
    return Status::Unavailable("write error on " + path);
  }
  return Status::Ok();
}

Result<Hc2lIndex> Hc2lIndex::Load(const std::string& path) {
  return Load(path, /*use_mmap=*/false);
}

Result<Hc2lIndex> Hc2lIndex::Load(const std::string& path, bool use_mmap) {
  io::FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  io::Reader reader(f.get());
  io::Reader* r = &reader;
  const uint64_t file_size = reader.remaining();
  uint64_t magic = 0;
  if (!io::ReadValue(r, &magic) ||
      (magic != kHc2lIndexMagic && magic != kHc2lIndexMagicV3 &&
       magic != kHc2lIndexMagicV4)) {
    return Status::InvalidArgument("not an HC2L index file: " + path);
  }
  Hc2lIndex index;
  uint8_t has_contraction = 0;
  bool has_hints = magic != kHc2lIndexMagic;

  const auto read_contraction = [&](io::Reader* in) {
    bool ok = io::ReadValue(in, &has_contraction);
    if (ok && has_contraction) {
      index.contraction_ =
          std::unique_ptr<DegreeOneContraction>(new DegreeOneContraction());
      DegreeOneContraction& c = *index.contraction_;
      ok = io::ReadVector(in, &c.core_id_) &&
           io::ReadVector(in, &c.to_original_) &&
           io::ReadVector(in, &c.root_core_id_) &&
           io::ReadVector(in, &c.dist_to_root_) &&
           io::ReadVector(in, &c.parent_) &&
           io::ReadVector(in, &c.parent_weight_) &&
           io::ReadVector(in, &c.depth_);
      uint64_t contracted = 0;
      ok = ok && io::ReadValue(in, &contracted);
      c.num_contracted_ = contracted;
    }
    return ok;
  };

  // The hint store must mirror the label store's shape exactly (Route
  // indexes both with the same offsets).
  const auto hints_match_labels = [&]() {
    return index.hints_.base == index.labels_.base &&
           index.hints_.level_start == index.labels_.level_start &&
           index.hints_.level_len == index.labels_.level_len;
  };

  // Every true-length hint entry must be a core vertex id or the no-hint
  // sentinel. O(entries) — run on heap loads only; a mapped open skips it
  // (the point of kMmap is not touching the arena pages) and relies on
  // CoreRoute's per-step range checks instead, which re-validate every hint
  // the walk actually dereferences.
  const auto validate_hint_entries = [&]() {
    const size_t core = index.hints_.base.size() - 1;
    for (size_t v = 0; v < core; ++v) {
      for (uint32_t a = index.hints_.base[v]; a < index.hints_.base[v + 1];
           ++a) {
        const uint32_t start = index.hints_.level_start[a];
        const uint32_t len = index.hints_.level_len[a];
        for (uint32_t j = 0; j < len; ++j) {
          const uint32_t e = index.hints_.arena.data()[start + j];
          if (e != kInvalidVertex && e >= core) return false;
        }
      }
    }
    return true;
  };

  // Query-path hardening shared by both loaders: the contraction mapping
  // and per-vertex code tables are indexed without bounds checks, so their
  // sizes and id ranges must agree with the structures actually loaded, and
  // each vertex must own at least depth+1 label arrays so any LCA level
  // indexes inside its range. The stored stats counts feed the facade's
  // range checks (NumVertices gates every query id), so a corrupt stats
  // block must not survive either: pin it to the loaded sizes. Graph-level
  // semantics (weights, actual distances) remain trusted — index files are
  // not designed to be loaded from adversarial sources.
  const auto validate_structure = [&]() {
    if (has_contraction) {
      const DegreeOneContraction& c = *index.contraction_;
      const size_t n = c.core_id_.size();
      const size_t core = c.to_original_.size();
      if (c.root_core_id_.size() != n || c.dist_to_root_.size() != n ||
          c.parent_.size() != n || c.parent_weight_.size() != n ||
          c.depth_.size() != n || core + c.num_contracted_ != n) {
        return false;
      }
      for (size_t v = 0; v < n; ++v) {
        if (c.root_core_id_[v] >= core || c.parent_[v] >= n) return false;
        if (c.core_id_[v] != kInvalidVertex &&
            (c.core_id_[v] >= core ||
             c.to_original_[c.core_id_[v]] != static_cast<Vertex>(v))) {
          return false;
        }
      }
    }
    if (index.labels_.base.empty()) return false;
    const size_t core = index.labels_.base.size() - 1;
    if (index.hierarchy_.vertex_code_.size() != core ||
        index.hierarchy_.node_of_vertex_.size() != core) {
      return false;
    }
    if (has_contraction && index.contraction_->to_original_.size() != core) {
      return false;
    }
    const uint64_t n =
        has_contraction ? index.contraction_->core_id_.size() : core;
    const uint64_t contracted =
        has_contraction ? index.contraction_->num_contracted_ : 0;
    if (index.stats_.num_vertices != n ||
        index.stats_.num_core_vertices != core ||
        index.stats_.num_contracted != contracted) {
      return false;
    }
    for (size_t v = 0; v < core; ++v) {
      const uint32_t arrays = index.labels_.base[v + 1] - index.labels_.base[v];
      if (arrays < TreeCodeDepth(index.hierarchy_.vertex_code_[v]) + 1) {
        return false;
      }
    }
    return true;
  };

  bool ok = true;
  if (magic == kHc2lIndexMagicV4) {
    // Sectioned format: parse the table, map the file when asked — so the
    // metadata parse runs straight off the mapping, no fread and no heap
    // staging — then attach the offset tables and arenas by view (kMmap:
    // no copy, no arena page touched) or by straight reads (kHeap). The
    // hint store shares the label store's offset tables: stored once,
    // shapes equal by construction.
    std::vector<io::SectionEntry> sections;
    ok = io::ReadSectionTable(r, file_size, &sections);
    const io::SectionEntry* meta =
        ok ? io::FindSection(sections, io::kSectionMeta) : nullptr;
    const io::SectionEntry* offsets =
        ok ? io::FindSection(sections, io::kSectionLabelOffsets) : nullptr;
    const io::SectionEntry* labels =
        ok ? io::FindSection(sections, io::kSectionLabelArena) : nullptr;
    const io::SectionEntry* hints =
        ok ? io::FindSection(sections, io::kSectionHintArena) : nullptr;
    ok = meta != nullptr && offsets != nullptr && labels != nullptr &&
         hints != nullptr;
    if (ok && use_mmap) {
      // Mapping dereferences nothing by itself; every later access stays
      // inside section bounds the table validation pinned to the real file
      // size.
      index.mapping_ = MappedFile::Open(path);
      ok = index.mapping_ != nullptr && index.mapping_->size() == file_size;
    }
    io::LabelStoreCounts counts;
    if (ok) {
      const auto parse_meta = [&](io::Reader* mr) {
        return io::ReadValue(mr, &index.stats_) && read_contraction(mr) &&
               index.hierarchy_.ReadFrom(mr) &&
               io::ReadLabelStoreCounts(mr, &counts);
      };
      if (use_mmap) {
        io::Reader mr(index.mapping_->data() + meta->offset, meta->bytes);
        ok = parse_meta(&mr);
      } else {
        ok = std::fseek(f.get(), static_cast<long>(meta->offset), SEEK_SET) ==
             0;
        io::Reader mr(f.get());
        mr.LimitTo(meta->bytes);
        ok = ok && parse_meta(&mr);
      }
      // The declared table and entry counts must exactly match the offsets
      // and arena sections' byte sizes (the divisions avoid forged-count
      // overflows), and the hint arena must mirror the label arena.
      ok = ok && io::OffsetsSectionMatches(*offsets, counts) &&
           labels->bytes % sizeof(uint32_t) == 0 &&
           labels->bytes / sizeof(uint32_t) == counts.arena_entries &&
           hints->bytes == labels->bytes;
    }
    if (ok && use_mmap) {
      const uint8_t* base = index.mapping_->data();
      io::AttachOffsetsView(base + offsets->offset, counts, &index.labels_,
                            &index.hints_);
      index.labels_.arena.ResetView(
          reinterpret_cast<const uint32_t*>(base + labels->offset),
          counts.arena_entries);
      index.hints_.arena.ResetView(
          reinterpret_cast<const uint32_t*>(base + hints->offset),
          counts.arena_entries);
      ok = io::ValidateLabelShape(index.labels_, counts.arena_entries) &&
           validate_structure();
      if (ok) {
        index.mapping_->AdviseRandom(labels->offset, labels->bytes);
        index.mapping_->AdviseRandom(hints->offset, hints->bytes);
      }
    } else if (ok) {
      const auto read_arena = [&](const io::SectionEntry& s, uint64_t entries,
                                  LabelArena* arena) {
        if (std::fseek(f.get(), static_cast<long>(s.offset), SEEK_SET) != 0) {
          return false;
        }
        io::Reader ar(f.get());
        arena->Reset(entries);
        return entries == 0 ||
               ar.Read(arena->data(), entries * sizeof(uint32_t));
      };
      ok = std::fseek(f.get(), static_cast<long>(offsets->offset), SEEK_SET) ==
           0;
      io::Reader orr(f.get());
      orr.LimitTo(offsets->bytes);
      ok = ok &&
           io::ReadLabelStoreOffsets(&orr, counts, &index.labels_,
                                     &index.hints_) &&
           io::ValidateLabelShape(index.labels_, counts.arena_entries) &&
           validate_structure() &&
           read_arena(*labels, counts.arena_entries, &index.labels_.arena) &&
           read_arena(*hints, counts.arena_entries, &index.hints_.arena) &&
           validate_hint_entries();
    }
  } else {
    // Legacy inline formats (HC2L0002 / HC2L0003); use_mmap is ignored —
    // their arenas interleave with the metadata stream, so there is
    // nothing alignable to map.
    ok = io::ReadValue(r, &index.stats_) && read_contraction(r) &&
         index.hierarchy_.ReadFrom(r) && io::ReadLabelStore(r, &index.labels_);
    if (ok && has_hints) {
      ok = io::ReadLabelStore(r, &index.hints_) && hints_match_labels() &&
           validate_hint_entries();
    }
    ok = ok && validate_structure();
  }
  if (!ok) {
    return Status::DataLoss("truncated or corrupt HC2L index file: " + path);
  }
  // The file-loaded height is likewise not trusted for the level bucketing's
  // bucket sizing; recompute it (equal for well-formed files).
  index.stats_.tree_height = index.hierarchy_.LevelBound();
  return index;
}

size_t Hc2lIndex::MappedBytes() const {
  size_t bytes = 0;
  if (!labels_.arena.owned()) bytes += labels_.arena.SizeBytes();
  if (!hints_.arena.owned()) bytes += hints_.arena.SizeBytes();
  // A mapped open views the offset tables too; the hint store shares the
  // label store's tables (the same mapped bytes), so they count once.
  if (!labels_.base.owned()) bytes += labels_.MetadataBytes();
  return bytes;
}

size_t Hc2lIndex::ArenaResidentBytes() const {
  size_t bytes = labels_.arena.SizeBytes() + hints_.arena.SizeBytes() +
                 labels_.MetadataBytes();
  // Heap loads hold separate (identical) hint offset tables; a mapped open
  // shares the label store's, which must then count once.
  if (hints_.base.owned()) bytes += hints_.MetadataBytes();
  return bytes;
}

}  // namespace hc2l
