#include "core/hc2l.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/timer.h"
#include "partition/balanced_cut.h"
#include "partition/shortcuts.h"
#include "search/dijkstra.h"

namespace hc2l {

namespace {

/// Encodes a 64-bit distance into a 32-bit label entry. Finite values must
/// stay below 2^31 so that any finite pair-sum is strictly smaller than
/// sentinel + anything; Query() exploits this to avoid per-entry branches.
uint32_t EncodeLabelDistance(Dist d) {
  if (d == kInfDist) return Hc2lIndex::kUnreachableLabel;
  HC2L_CHECK_LT(d, Dist{1} << 31);
  return static_cast<uint32_t>(d);
}

/// Pool of worker threads shared by one build. Grants are coarse: a caller
/// asks for extra threads and must release them after joining.
class ThreadBudget {
 public:
  explicit ThreadBudget(uint32_t total)
      : available_(total == 0 ? 0 : total - 1) {}

  /// Tries to reserve up to `want` extra threads; returns the number granted.
  uint32_t Acquire(uint32_t want) {
    uint32_t granted = 0;
    uint32_t current = available_.load(std::memory_order_relaxed);
    while (granted < want && current > 0) {
      if (available_.compare_exchange_weak(current, current - 1,
                                           std::memory_order_relaxed)) {
        ++granted;
      }
    }
    return granted;
  }

  void Release(uint32_t count) {
    available_.fetch_add(count, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint32_t> available_;
};

}  // namespace

/// Recursive construction of the balanced tree hierarchy and the tail-pruned
/// labelling (Algorithms 1-5), over the core graph.
class Hc2lBuilder {
 public:
  Hc2lBuilder(const Graph& core, const Hc2lOptions& options)
      : options_(options), budget_(options.num_threads) {
    const size_t n = core.NumVertices();
    hierarchy_.node_of_vertex_.assign(n, UINT32_MAX);
    hierarchy_.vertex_code_.assign(n, kRootCode);
    label_data_.resize(n);
    label_lens_.resize(n);

    std::vector<Vertex> identity(n);
    for (Vertex v = 0; v < n; ++v) identity[v] = v;
    const int32_t root = NewNode(kRootCode, -1);
    Graph root_copy = core;  // recursion consumes its subgraph
    BuildNode(std::move(root_copy), std::move(identity), root, kRootCode);
  }

  /// Moves results into the index.
  void Finish(Hc2lIndex* index) {
    const size_t n = label_data_.size();
    index->hierarchy_ = std::move(hierarchy_);
    index->base_.assign(n + 1, 0);
    size_t total_arrays = 0;
    size_t total_entries = 0;
    for (size_t v = 0; v < n; ++v) {
      total_arrays += label_lens_[v].size();
      total_entries += label_data_[v].size();
    }
    index->level_start_.reserve(total_arrays + n);
    index->data_.reserve(total_entries);
    for (size_t v = 0; v < n; ++v) {
      index->base_[v] = static_cast<uint32_t>(index->level_start_.size());
      size_t pos = 0;
      for (const uint32_t len : label_lens_[v]) {
        index->level_start_.push_back(
            static_cast<uint32_t>(index->data_.size()));
        index->data_.insert(index->data_.end(), label_data_[v].begin() + pos,
                            label_data_[v].begin() + pos + len);
        pos += len;
      }
      HC2L_CHECK_EQ(pos, label_data_[v].size());
      index->level_start_.push_back(static_cast<uint32_t>(index->data_.size()));
      // Free the accumulator eagerly to halve peak memory.
      label_data_[v] = {};
      label_lens_[v] = {};
    }
    index->base_[n] = static_cast<uint32_t>(index->level_start_.size());

    index->stats_.num_tree_nodes = index->hierarchy_.NumNodes();
    index->stats_.tree_height = index->hierarchy_.Height();
    index->stats_.max_cut_size = index->hierarchy_.MaxCutSize();
    index->stats_.avg_cut_size = index->hierarchy_.AvgCutSize();
    index->stats_.num_shortcuts = shortcut_count_.load();
    index->stats_.label_entries = total_entries;
    index->stats_.label_bytes =
        index->data_.size() * sizeof(uint32_t) +
        index->level_start_.size() * sizeof(uint32_t) +
        index->base_.size() * sizeof(uint32_t);
    index->stats_.lca_bytes = index->hierarchy_.LcaStorageBytes();
  }

 private:
  int32_t NewNode(TreeCode code, int32_t parent) {
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    hierarchy_.nodes_.push_back(HierarchyNode{code, parent, -1, -1, {}});
    return static_cast<int32_t>(hierarchy_.nodes_.size() - 1);
  }

  /// Runs fn(i) for i in [0, count), using up to the granted extra threads.
  template <typename Fn>
  void ParallelFor(size_t count, const Fn& fn) {
    if (count == 0) return;
    uint32_t extra = count > 1
                         ? budget_.Acquire(static_cast<uint32_t>(
                               std::min<size_t>(count - 1, 64)))
                         : 0;
    if (extra == 0) {
      for (size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    std::atomic<size_t> next{0};
    auto worker = [&]() {
      for (size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        fn(i);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(extra);
    for (uint32_t t = 0; t < extra; ++t) threads.emplace_back(worker);
    worker();
    for (auto& t : threads) t.join();
    budget_.Release(extra);
  }

  /// Ranks `cut` (ascending Eq. 6 score, ties by global id), runs the
  /// prefix-tracking Dijkstras of Algorithm 5, emits one (tail-pruned)
  /// distance array per subgraph vertex, and registers the cut vertices with
  /// the hierarchy node. Returns the per-cut-vertex distance vectors (rank
  /// order) for shortcut computation.
  std::vector<std::vector<Dist>> LabelCutSet(const Graph& sub,
                                             std::vector<Vertex>* cut,
                                             const std::vector<Vertex>& to_global,
                                             int32_t node_idx, TreeCode code) {
    const size_t n = sub.NumVertices();
    const size_t m = cut->size();

    if (m == 0) {
      // Disconnected split: the empty cut still contributes one (empty)
      // array per subtree vertex so that label levels stay aligned.
      for (Vertex v = 0; v < n; ++v) {
        label_lens_[to_global[v]].push_back(0);
      }
      return {};
    }

    // Rank cut vertices by Eq. 6 / Algorithm 5 lines 2-5: ascending count of
    // vertices whose shortest path from the cut vertex passes through
    // another cut vertex ("most coverable last").
    if (options_.tail_pruning && m > 1) {
      std::vector<uint8_t> in_cut(n, 0);
      for (Vertex v : *cut) in_cut[v] = 1;
      std::vector<uint64_t> score(m, 0);
      ParallelFor(m, [&](size_t i) {
        const DistAndPruneResult r = DistAndPrune(sub, (*cut)[i], in_cut);
        uint64_t covered = 0;
        for (Vertex v = 0; v < n; ++v) covered += r.via[v];
        score[i] = covered;
      });
      std::vector<size_t> order(m);
      for (size_t i = 0; i < m; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (score[a] != score[b]) return score[a] < score[b];
        return to_global[(*cut)[a]] < to_global[(*cut)[b]];
      });
      std::vector<Vertex> ranked(m);
      for (size_t i = 0; i < m; ++i) ranked[i] = (*cut)[order[i]];
      *cut = std::move(ranked);
    } else {
      // Deterministic order without ranking.
      std::sort(cut->begin(), cut->end(), [&](Vertex a, Vertex b) {
        return to_global[a] < to_global[b];
      });
    }

    // Prefix-tracking Dijkstras (Algorithm 5 lines 6-7). The tracked set of
    // v_i is {v_0 .. v_{i-1}}.
    std::vector<DistAndPruneResult> results(m);
    std::vector<std::vector<uint8_t>> prefix_masks;
    if (options_.tail_pruning) {
      prefix_masks.resize(m);
      std::vector<uint8_t> mask(n, 0);
      for (size_t i = 0; i < m; ++i) {
        prefix_masks[i] = mask;
        mask[(*cut)[i]] = 1;
      }
    }
    const std::vector<uint8_t> empty_mask(n, 0);
    ParallelFor(m, [&](size_t i) {
      results[i] = DistAndPrune(
          sub, (*cut)[i],
          options_.tail_pruning ? prefix_masks[i] : empty_mask);
    });
    prefix_masks.clear();

    // Labels with tail pruning (Algorithm 5 lines 8-10).
    for (Vertex v = 0; v < n; ++v) {
      size_t k = 0;
      for (size_t i = 0; i < m; ++i) {
        if (results[i].via[v] == 0) k = i;
      }
      auto& data = label_data_[to_global[v]];
      for (size_t i = 0; i <= k; ++i) {
        data.push_back(EncodeLabelDistance(results[i].dist[v]));
      }
      label_lens_[to_global[v]].push_back(static_cast<uint32_t>(k + 1));
    }

    // Register cut vertices (global ids, rank order) with the node. The
    // nodes_ vector may be reallocated concurrently by sibling subtrees, so
    // the node reference is taken under the lock; per-vertex arrays are
    // fixed-size and each element is written by exactly one node.
    {
      std::lock_guard<std::mutex> lock(nodes_mutex_);
      HierarchyNode& node = hierarchy_.nodes_[node_idx];
      node.cut.reserve(m);
      for (Vertex v : *cut) node.cut.push_back(to_global[v]);
    }
    for (Vertex v : *cut) {
      const Vertex global = to_global[v];
      hierarchy_.node_of_vertex_[global] = static_cast<uint32_t>(node_idx);
      hierarchy_.vertex_code_[global] = code;
    }

    std::vector<std::vector<Dist>> dist_from_cut(m);
    for (size_t i = 0; i < m; ++i) {
      dist_from_cut[i] = std::move(results[i].dist);
    }
    return dist_from_cut;
  }

  void BuildNode(Graph sub, std::vector<Vertex> to_global, int32_t node_idx,
                 TreeCode code) {
    const size_t n = sub.NumVertices();
    const uint32_t depth = TreeCodeDepth(code);

    std::vector<Vertex> cut;
    BalancedCutResult bc;
    bool is_leaf = n <= options_.leaf_size || depth >= kMaxTreeDepth;
    if (!is_leaf) {
      bc = BalancedCut(sub, options_.beta);
      // Degenerate splits (everything became the cut) terminate recursion.
      is_leaf = bc.part_a.empty() && bc.part_b.empty();
    }
    if (is_leaf) {
      cut.resize(n);
      for (Vertex v = 0; v < n; ++v) cut[v] = v;
      LabelCutSet(sub, &cut, to_global, node_idx, code);
      return;
    }

    cut = std::move(bc.cut);
    const std::vector<std::vector<Dist>> dist_from_cut =
        LabelCutSet(sub, &cut, to_global, node_idx, code);

    // Prepare both child subgraphs (Algorithm 3 shortcuts keep each side
    // distance-preserving), then recurse — in parallel when the budget
    // allows.
    struct Child {
      Graph graph;
      std::vector<Vertex> to_global;
      int32_t node = -1;
      TreeCode code = kRootCode;
    };
    std::vector<Child> children;
    const std::vector<Vertex>* parts[2] = {&bc.part_a, &bc.part_b};
    for (int side = 0; side < 2; ++side) {
      const std::vector<Vertex>& part = *parts[side];
      if (part.empty()) continue;
      ShortcutResult sc = ComputeShortcuts(sub, cut, part, dist_from_cut);
      shortcut_count_.fetch_add(sc.shortcuts.size(),
                                std::memory_order_relaxed);
      Subgraph child_sub = InducedSubgraph(sub, part, sc.shortcuts);
      Child child;
      child.graph = std::move(child_sub.graph);
      child.to_global.reserve(part.size());
      for (Vertex v : child_sub.to_parent) {
        child.to_global.push_back(to_global[v]);
      }
      child.code = TreeCodeChild(code, side);
      child.node = NewNode(child.code, node_idx);
      {
        std::lock_guard<std::mutex> lock(nodes_mutex_);
        (side == 0 ? hierarchy_.nodes_[node_idx].left
                   : hierarchy_.nodes_[node_idx].right) = child.node;
      }
      children.push_back(std::move(child));
    }

    // Release the parent subgraph before descending.
    sub = Graph();
    to_global.clear();
    to_global.shrink_to_fit();

    if (children.size() == 2 && budget_.Acquire(1) == 1) {
      Child left = std::move(children[0]);
      std::thread worker([this, &left]() {
        BuildNode(std::move(left.graph), std::move(left.to_global), left.node,
                  left.code);
      });
      BuildNode(std::move(children[1].graph), std::move(children[1].to_global),
                children[1].node, children[1].code);
      worker.join();
      budget_.Release(1);
    } else {
      for (Child& child : children) {
        BuildNode(std::move(child.graph), std::move(child.to_global),
                  child.node, child.code);
      }
    }
  }

  const Hc2lOptions options_;
  ThreadBudget budget_;
  std::mutex nodes_mutex_;
  std::atomic<uint64_t> shortcut_count_{0};
  BalancedTreeHierarchy hierarchy_;
  // Per-core-vertex label accumulators: concatenated level arrays + lengths.
  std::vector<std::vector<uint32_t>> label_data_;
  std::vector<std::vector<uint32_t>> label_lens_;
};

Hc2lIndex Hc2lIndex::Build(const Graph& g, const Hc2lOptions& options) {
  HC2L_CHECK_GT(options.beta, 0.0);
  HC2L_CHECK_LE(options.beta, 0.5);
  Timer timer;
  Hc2lIndex index;
  index.stats_.num_vertices = g.NumVertices();

  const Graph* core = &g;
  if (options.contract_degree_one) {
    index.contraction_ = std::make_unique<DegreeOneContraction>(g);
    core = &index.contraction_->CoreGraph();
    index.stats_.num_contracted = index.contraction_->NumContracted();
  }
  index.stats_.num_core_vertices = core->NumVertices();

  Hc2lBuilder builder(*core, options);
  builder.Finish(&index);
  index.stats_.build_seconds = timer.Seconds();
  return index;
}

Dist Hc2lIndex::CoreQuery(Vertex s, Vertex t, uint64_t* hubs_scanned) const {
  if (s == t) return 0;
  const uint32_t level = hierarchy_.LcaLevel(s, t);
  const uint32_t s_idx = base_[s] + level;
  const uint32_t t_idx = base_[t] + level;
  const uint32_t* a = data_.data() + level_start_[s_idx];
  const uint32_t* b = data_.data() + level_start_[t_idx];
  const uint32_t len_a = level_start_[s_idx + 1] - level_start_[s_idx];
  const uint32_t len_b = level_start_[t_idx + 1] - level_start_[t_idx];
  const uint32_t len = std::min(len_a, len_b);
  if (hubs_scanned != nullptr) *hubs_scanned += len;
  uint64_t best = UINT64_MAX;
  for (uint32_t i = 0; i < len; ++i) {
    const uint64_t sum = static_cast<uint64_t>(a[i]) + b[i];
    if (sum < best) best = sum;
  }
  return best >= kUnreachableLabel ? kInfDist : best;
}

Dist Hc2lIndex::Query(Vertex s, Vertex t) const {
  return QueryCountingHubs(s, t, nullptr);
}

Dist Hc2lIndex::QueryCountingHubs(Vertex s, Vertex t,
                                  uint64_t* hubs_scanned) const {
  HC2L_CHECK_LT(s, stats_.num_vertices);
  HC2L_CHECK_LT(t, stats_.num_vertices);
  if (s == t) return 0;
  if (contraction_ == nullptr) return CoreQuery(s, t, hubs_scanned);

  const Vertex root_s = contraction_->RootCoreId(s);
  const Vertex root_t = contraction_->RootCoreId(t);
  if (root_s == root_t) return contraction_->SameTreeDistance(s, t);
  const Dist core = CoreQuery(root_s, root_t, hubs_scanned);
  if (core == kInfDist) return kInfDist;
  return contraction_->DistToRoot(s) + core + contraction_->DistToRoot(t);
}

void Hc2lIndex::RebuildLabels(const Graph& g, bool tail_pruning) {
  HC2L_CHECK_EQ(g.NumVertices(), stats_.num_vertices);
  Timer timer;

  // Refresh the contraction distances (the removal order is deterministic in
  // topology, so the core vertex set — and its numbering — is unchanged).
  const Graph* core = &g;
  if (contraction_ != nullptr) {
    auto refreshed = std::make_unique<DegreeOneContraction>(g);
    HC2L_CHECK_EQ(refreshed->CoreGraph().NumVertices(),
                  stats_.num_core_vertices);
    contraction_ = std::move(refreshed);
    core = &contraction_->CoreGraph();
  }
  const size_t n = core->NumVertices();

  // Fresh label accumulators.
  std::vector<std::vector<uint32_t>> label_data(n);
  std::vector<std::vector<uint32_t>> label_lens(n);
  uint64_t shortcut_count = 0;
  auto& nodes = hierarchy_.nodes_;

  // Top-down walk over the stored hierarchy, recomputing distances.
  //
  // Weight changes can make the recomputed shortcut sets differ from the
  // original build's, and a *new* shortcut may connect the two sides of a
  // stored descendant cut — breaking the separator invariant the labels
  // depend on (the paper's "with some adjustments for shortcuts", §5.4).
  // Before labelling each node we therefore scan its subgraph for edges
  // crossing the stored cut and move one endpoint of each such edge into
  // the cut (the same repair Algorithm 2 applies to direct S-T edges),
  // updating the vertex's hierarchy assignment accordingly.
  struct Frame {
    Graph sub;
    std::vector<Vertex> to_global;
    int32_t node;
  };
  std::vector<Frame> stack;
  {
    std::vector<Vertex> identity(n);
    for (Vertex v = 0; v < n; ++v) identity[v] = v;
    stack.push_back({*core, std::move(identity), 0});
  }
  std::vector<Vertex> global_to_child(n, kInvalidVertex);
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const int32_t node_idx = frame.node;
    const size_t sub_n = frame.sub.NumVertices();

    for (size_t i = 0; i < frame.to_global.size(); ++i) {
      global_to_child[frame.to_global[i]] = static_cast<Vertex>(i);
    }

    // Side of each subgraph vertex: 0 = left subtree, 1 = right subtree,
    // 2 = this node's cut. Membership is derived from the (kept-up-to-date)
    // vertex codes: v lies in child c's subtree iff LcaLevel(code(v),
    // code(c)) == depth(c).
    const int32_t left = nodes[node_idx].left;
    const int32_t right = nodes[node_idx].right;
    std::vector<uint8_t> side(sub_n, 2);
    auto assign_sides = [&]() {
      for (Vertex v = 0; v < sub_n; ++v) {
        const TreeCode code = hierarchy_.vertex_code_[frame.to_global[v]];
        side[v] = 2;
        for (int which = 0; which < 2; ++which) {
          const int32_t child = which == 0 ? left : right;
          if (child < 0) continue;
          const TreeCode child_code = nodes[child].code;
          if (TreeCodeLcaLevel(code, child_code) == TreeCodeDepth(child_code)) {
            side[v] = static_cast<uint8_t>(which);
            break;
          }
        }
      }
    };
    assign_sides();

    // Separator repair: move one endpoint of every cut-crossing edge into
    // this node's cut.
    if (left >= 0 || right >= 0) {
      bool repaired = true;
      while (repaired) {
        repaired = false;
        for (Vertex x = 0; x < sub_n && !repaired; ++x) {
          if (side[x] != 0) continue;
          for (const Arc& a : frame.sub.Neighbors(x)) {
            if (side[a.to] != 1) continue;
            // Edge x(left) - a.to(right): reassign x to this node's cut.
            const Vertex global_x = frame.to_global[x];
            const uint32_t old_node = hierarchy_.node_of_vertex_[global_x];
            auto& old_cut = nodes[old_node].cut;
            old_cut.erase(std::find(old_cut.begin(), old_cut.end(), global_x));
            nodes[node_idx].cut.push_back(global_x);
            hierarchy_.node_of_vertex_[global_x] =
                static_cast<uint32_t>(node_idx);
            hierarchy_.vertex_code_[global_x] = nodes[node_idx].code;
            side[x] = 2;
            repaired = true;
            break;
          }
        }
      }
    }

    const std::vector<Vertex>& cut_global = nodes[node_idx].cut;
    const size_t m = cut_global.size();
    std::vector<Vertex> cut_child(m);
    for (size_t i = 0; i < m; ++i) {
      cut_child[i] = global_to_child[cut_global[i]];
      HC2L_CHECK_NE(cut_child[i], kInvalidVertex);
    }

    // Prefix-tracking Dijkstras in the stored (+ repaired) rank order.
    std::vector<DistAndPruneResult> results(m);
    {
      std::vector<uint8_t> mask(sub_n, 0);
      const std::vector<uint8_t> empty_mask(sub_n, 0);
      for (size_t i = 0; i < m; ++i) {
        results[i] = DistAndPrune(frame.sub, cut_child[i],
                                  tail_pruning ? mask : empty_mask);
        mask[cut_child[i]] = 1;
      }
    }
    if (m == 0) {
      for (Vertex v = 0; v < sub_n; ++v) {
        label_lens[frame.to_global[v]].push_back(0);
      }
    } else {
      for (Vertex v = 0; v < sub_n; ++v) {
        size_t k = 0;
        for (size_t i = 0; i < m; ++i) {
          if (results[i].via[v] == 0) k = i;
        }
        auto& data = label_data[frame.to_global[v]];
        for (size_t i = 0; i <= k; ++i) {
          data.push_back(EncodeLabelDistance(results[i].dist[v]));
        }
        label_lens[frame.to_global[v]].push_back(
            static_cast<uint32_t>(k + 1));
      }
    }

    std::vector<std::vector<Dist>> dist_from_cut(m);
    for (size_t i = 0; i < m; ++i) {
      dist_from_cut[i] = std::move(results[i].dist);
    }
    for (int which = 0; which < 2; ++which) {
      const int32_t child = which == 0 ? left : right;
      if (child < 0) continue;
      std::vector<Vertex> part;
      for (Vertex v = 0; v < sub_n; ++v) {
        if (side[v] == which) part.push_back(v);
      }
      if (part.empty()) continue;
      ShortcutResult sc =
          ComputeShortcuts(frame.sub, cut_child, part, dist_from_cut);
      shortcut_count += sc.shortcuts.size();
      Subgraph child_sub = InducedSubgraph(frame.sub, part, sc.shortcuts);
      std::vector<Vertex> child_to_global;
      child_to_global.reserve(part.size());
      for (Vertex v : child_sub.to_parent) {
        child_to_global.push_back(frame.to_global[v]);
      }
      stack.push_back(
          {std::move(child_sub.graph), std::move(child_to_global), child});
    }
  }

  // Re-flatten.
  data_.clear();
  level_start_.clear();
  base_.assign(n + 1, 0);
  uint64_t total_entries = 0;
  for (size_t v = 0; v < n; ++v) {
    base_[v] = static_cast<uint32_t>(level_start_.size());
    size_t pos = 0;
    for (const uint32_t len : label_lens[v]) {
      level_start_.push_back(static_cast<uint32_t>(data_.size()));
      data_.insert(data_.end(), label_data[v].begin() + pos,
                   label_data[v].begin() + pos + len);
      pos += len;
    }
    HC2L_CHECK_EQ(pos, label_data[v].size());
    total_entries += label_data[v].size();
    level_start_.push_back(static_cast<uint32_t>(data_.size()));
    label_data[v] = {};
    label_lens[v] = {};
  }
  base_[n] = static_cast<uint32_t>(level_start_.size());

  stats_.num_shortcuts = shortcut_count;
  stats_.label_entries = total_entries;
  stats_.label_bytes = data_.size() * sizeof(uint32_t) +
                       level_start_.size() * sizeof(uint32_t) +
                       base_.size() * sizeof(uint32_t);
  // Cut repairs may have moved vertices between nodes.
  stats_.tree_height = hierarchy_.Height();
  stats_.max_cut_size = hierarchy_.MaxCutSize();
  stats_.avg_cut_size = hierarchy_.AvgCutSize();
  stats_.build_seconds = timer.Seconds();
}

size_t Hc2lIndex::LabelSizeBytes() const {
  return data_.size() * sizeof(uint32_t) +
         level_start_.size() * sizeof(uint32_t) +
         base_.size() * sizeof(uint32_t);
}

std::vector<Dist> Hc2lIndex::BatchQuery(Vertex source,
                                        std::span<const Vertex> targets) const {
  std::vector<Dist> out;
  out.reserve(targets.size());
  for (const Vertex t : targets) out.push_back(Query(source, t));
  return out;
}

std::vector<std::vector<Dist>> Hc2lIndex::DistanceMatrix(
    std::span<const Vertex> sources, std::span<const Vertex> targets) const {
  std::vector<std::vector<Dist>> matrix;
  matrix.reserve(sources.size());
  for (const Vertex s : sources) matrix.push_back(BatchQuery(s, targets));
  return matrix;
}

std::vector<std::pair<Dist, Vertex>> Hc2lIndex::KNearest(
    Vertex source, std::span<const Vertex> candidates, size_t k) const {
  std::vector<std::pair<Dist, Vertex>> ranked;
  ranked.reserve(candidates.size());
  for (const Vertex c : candidates) {
    const Dist d = Query(source, c);
    if (d != kInfDist) ranked.emplace_back(d, c);
  }
  const size_t keep = std::min(k, ranked.size());
  std::partial_sort(
      ranked.begin(), ranked.begin() + keep, ranked.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  ranked.resize(keep);
  return ranked;
}

namespace {

// --- Minimal binary serialization helpers (no exceptions; fwrite/fread). ---

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

constexpr uint64_t kMagic = 0x4843324c30303031ULL;  // "HC2L0001"

bool WritePod(std::FILE* f, const void* p, size_t bytes) {
  return std::fwrite(p, 1, bytes, f) == bytes;
}

template <typename T>
bool WriteValue(std::FILE* f, const T& value) {
  return WritePod(f, &value, sizeof(T));
}

template <typename T>
bool WriteVector(std::FILE* f, const std::vector<T>& v) {
  const uint64_t size = v.size();
  return WriteValue(f, size) &&
         (size == 0 || WritePod(f, v.data(), size * sizeof(T)));
}

bool ReadPod(std::FILE* f, void* p, size_t bytes) {
  return std::fread(p, 1, bytes, f) == bytes;
}

template <typename T>
bool ReadValue(std::FILE* f, T* value) {
  return ReadPod(f, value, sizeof(T));
}

template <typename T>
bool ReadVector(std::FILE* f, std::vector<T>* v) {
  uint64_t size = 0;
  if (!ReadValue(f, &size)) return false;
  if (size > (uint64_t{1} << 40) / sizeof(T)) return false;  // sanity bound
  v->resize(size);
  return size == 0 || ReadPod(f, v->data(), size * sizeof(T));
}

}  // namespace

bool Hc2lIndex::Save(const std::string& path, std::string* error) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  bool ok = WriteValue(f.get(), kMagic) && WriteValue(f.get(), stats_);
  const uint8_t has_contraction = contraction_ != nullptr ? 1 : 0;
  ok = ok && WriteValue(f.get(), has_contraction);
  if (ok && has_contraction) {
    const DegreeOneContraction& c = *contraction_;
    ok = WriteVector(f.get(), c.core_id_) &&
         WriteVector(f.get(), c.to_original_) &&
         WriteVector(f.get(), c.root_core_id_) &&
         WriteVector(f.get(), c.dist_to_root_) &&
         WriteVector(f.get(), c.parent_) &&
         WriteVector(f.get(), c.parent_weight_) &&
         WriteVector(f.get(), c.depth_);
    const uint64_t contracted = c.num_contracted_;
    ok = ok && WriteValue(f.get(), contracted);
  }
  // Hierarchy.
  const uint64_t num_nodes = hierarchy_.nodes_.size();
  ok = ok && WriteValue(f.get(), num_nodes);
  for (const HierarchyNode& node : hierarchy_.nodes_) {
    ok = ok && WriteValue(f.get(), node.code) &&
         WriteValue(f.get(), node.parent) && WriteValue(f.get(), node.left) &&
         WriteValue(f.get(), node.right) && WriteVector(f.get(), node.cut);
  }
  ok = ok && WriteVector(f.get(), hierarchy_.node_of_vertex_) &&
       WriteVector(f.get(), hierarchy_.vertex_code_) &&
       WriteVector(f.get(), base_) && WriteVector(f.get(), level_start_) &&
       WriteVector(f.get(), data_);
  if (!ok) {
    *error = "write error on " + path;
    return false;
  }
  return true;
}

std::optional<Hc2lIndex> Hc2lIndex::Load(const std::string& path,
                                         std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    *error = "cannot open " + path;
    return std::nullopt;
  }
  uint64_t magic = 0;
  if (!ReadValue(f.get(), &magic) || magic != kMagic) {
    *error = "not an HC2L index file: " + path;
    return std::nullopt;
  }
  Hc2lIndex index;
  bool ok = ReadValue(f.get(), &index.stats_);
  uint8_t has_contraction = 0;
  ok = ok && ReadValue(f.get(), &has_contraction);
  if (ok && has_contraction) {
    index.contraction_ =
        std::unique_ptr<DegreeOneContraction>(new DegreeOneContraction());
    DegreeOneContraction& c = *index.contraction_;
    ok = ReadVector(f.get(), &c.core_id_) &&
         ReadVector(f.get(), &c.to_original_) &&
         ReadVector(f.get(), &c.root_core_id_) &&
         ReadVector(f.get(), &c.dist_to_root_) &&
         ReadVector(f.get(), &c.parent_) &&
         ReadVector(f.get(), &c.parent_weight_) &&
         ReadVector(f.get(), &c.depth_);
    uint64_t contracted = 0;
    ok = ok && ReadValue(f.get(), &contracted);
    c.num_contracted_ = contracted;
  }
  uint64_t num_nodes = 0;
  ok = ok && ReadValue(f.get(), &num_nodes);
  if (ok && num_nodes > (uint64_t{1} << 32)) ok = false;
  if (ok) {
    index.hierarchy_.nodes_.resize(num_nodes);
    for (HierarchyNode& node : index.hierarchy_.nodes_) {
      ok = ok && ReadValue(f.get(), &node.code) &&
           ReadValue(f.get(), &node.parent) &&
           ReadValue(f.get(), &node.left) &&
           ReadValue(f.get(), &node.right) && ReadVector(f.get(), &node.cut);
      if (!ok) break;
    }
  }
  ok = ok && ReadVector(f.get(), &index.hierarchy_.node_of_vertex_) &&
       ReadVector(f.get(), &index.hierarchy_.vertex_code_) &&
       ReadVector(f.get(), &index.base_) &&
       ReadVector(f.get(), &index.level_start_) &&
       ReadVector(f.get(), &index.data_);
  if (!ok) {
    *error = "truncated or corrupt HC2L index file: " + path;
    return std::nullopt;
  }
  return index;
}

}  // namespace hc2l
