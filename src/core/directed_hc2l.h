#ifndef HC2L_CORE_DIRECTED_HC2L_H_
#define HC2L_CORE_DIRECTED_HC2L_H_

#include <cstdint>
#include <vector>

#include "common/label_arena.h"
#include "graph/digraph.h"
#include "hierarchy/hierarchy.h"

namespace hc2l {

/// Options for the directed HC2L extension.
struct DirectedHc2lOptions {
  double beta = 0.2;
  uint32_t leaf_size = 8;
  bool tail_pruning = true;
  /// Construction threads (shared pool); queries stay single-threaded.
  uint32_t num_threads = 1;
};

/// Directed-graph HC2L (the Section 5.3 extension).
///
/// Vertex cuts are computed on the undirected projection, so they separate
/// paths in both directions; every label level stores *two* distance arrays
/// per vertex — an out-array d(v -> hub) and an in-array d(hub -> v) — each
/// tail-pruned independently per direction. A query min-reduces the source's
/// out-array against the target's in-array at the LCA level:
///   d(s -> t) = min_r d(s -> r) + d(r -> t),  r in cut(LCA(s, t)).
///
/// Degree-one contraction is not applied in the directed variant (pendant
/// trees are not distance-transparent under asymmetric arcs); the paper notes
/// road networks are "almost undirected", so the undirected index remains the
/// default for symmetric inputs.
class DirectedHc2lIndex {
 public:
  static constexpr uint32_t kUnreachableLabel = UINT32_MAX;

  /// Builds an index over the digraph.
  static DirectedHc2lIndex Build(const Digraph& g,
                                 const DirectedHc2lOptions& options = {});

  /// Exact directed distance d(s -> t); kInfDist if t is unreachable from s.
  Dist Query(Vertex s, Vertex t) const;

  size_t NumVertices() const { return out_labels_.base.size() - 1; }
  const BalancedTreeHierarchy& Hierarchy() const { return hierarchy_; }

  /// Total stored distance entries (both directions, padding excluded).
  size_t NumEntries() const;

  /// Resident label storage in bytes (aligned arenas + offset tables).
  size_t LabelSizeBytes() const;

 private:
  DirectedHc2lIndex() = default;
  friend class DirectedHc2lBuilder;

  BalancedTreeHierarchy hierarchy_;
  // Per-direction cache-aligned labels, same layout as the undirected index
  // (see LabelStore): out = d(v -> hub), in = d(hub -> v).
  LabelStore out_labels_;
  LabelStore in_labels_;
};

}  // namespace hc2l

#endif  // HC2L_CORE_DIRECTED_HC2L_H_
