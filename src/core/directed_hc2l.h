#ifndef HC2L_CORE_DIRECTED_HC2L_H_
#define HC2L_CORE_DIRECTED_HC2L_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/label_arena.h"
#include "common/mmap_file.h"
#include "core/query_common.h"
#include "graph/digraph.h"
#include "hc2l/status.h"
#include "hierarchy/contraction.h"
#include "hierarchy/hierarchy.h"

namespace hc2l {

/// Options for the directed HC2L extension.
struct DirectedHc2lOptions {
  double beta = 0.2;
  uint32_t leaf_size = 8;
  bool tail_pruning = true;
  /// Degree-one contraction over the underlying undirected projection
  /// (Section 4.2.2 ported to digraphs): pendant chains — including one-way
  /// pendant streets — are stripped before the hierarchy is built and
  /// answered through the contraction mapping. Disabling indexes the full
  /// digraph (ablation).
  bool contract_degree_one = true;
  /// Record per-direction route hints next to the labels (out: first hop of
  /// v -> hub; in: predecessor on hub -> v), enabling label-based path
  /// unpacking (Route). Disabling keeps the legacy HC2D0001/HC2D0002 disk
  /// formats; routes then need a graph-backed fallback unpacker.
  bool route_hints = true;
  /// Construction threads (shared pool); queries stay single-threaded.
  uint32_t num_threads = 1;
};

/// Directed-graph HC2L (the Section 5.3 extension).
///
/// Vertex cuts are computed on the undirected projection, so they separate
/// paths in both directions; every label level stores *two* distance arrays
/// per vertex — an out-array d(v -> hub) and an in-array d(hub -> v) — each
/// tail-pruned independently per direction. A query min-reduces the source's
/// out-array against the target's in-array at the LCA level:
///   d(s -> t) = min_r d(s -> r) + d(r -> t),  r in cut(LCA(s, t)).
///
/// Degree-one contraction (on by default, as in the undirected index)
/// strips pendant trees of the underlying projection and builds the
/// hierarchy over the directed core only. Distances through a pendant chain
/// resolve as per-direction offsets to its root — for one-way pendant edges
/// that means offset-to-root in the existing direction and unreachable in
/// the other — and same-tree queries climb to the in-tree LCA
/// (DirectedDegreeOneContraction, src/hierarchy/contraction.h).
class DirectedHc2lIndex {
 public:
  static constexpr uint32_t kUnreachableLabel = UINT32_MAX;

  /// Builds an index over the digraph.
  static DirectedHc2lIndex Build(const Digraph& g,
                                 const DirectedHc2lOptions& options = {});

  /// Exact directed distance d(s -> t); kInfDist if t is unreachable from s.
  Dist Query(Vertex s, Vertex t) const;

  /// One-to-many: d(source -> targets[i]) for every target, in order. Mirrors
  /// the undirected fast path: the source's out-array side is hoisted and
  /// targets are swept grouped by LCA level.
  std::vector<Dist> BatchQuery(Vertex source,
                               std::span<const Vertex> targets) const;

  /// Span-writing BatchQuery: writes out[i] = d(source -> targets[i]) for
  /// every i (every slot is written). Working memory reuses the calling
  /// thread's QueryScratch, so steady-state calls do not allocate.
  void BatchQueryInto(Vertex source, std::span<const Vertex> targets,
                      Dist* out) const;

  /// Many-to-many: result[i][j] = d(sources[i] -> targets[j]), with
  /// target-side resolution hoisted once per matrix and targets tiled so
  /// their in-label arrays stay L2-resident across sources.
  std::vector<std::vector<Dist>> DistanceMatrix(
      std::span<const Vertex> sources, std::span<const Vertex> targets) const;

  /// The k candidates nearest *from* `source` by directed distance (ties
  /// broken deterministically by candidate order), sorted ascending;
  /// unreachable candidates excluded.
  std::vector<std::pair<Dist, Vertex>> KNearest(
      Vertex source, std::span<const Vertex> candidates, size_t k) const;

  /// Target-side state shared across sources — the same ResolvedTargetSet
  /// shape as Hc2lIndex::ResolvedTargets, so the query engine and facade
  /// template over both indexes. With contraction, core holds the pendant
  /// root and detour holds d(root -> target) (kInfDist for one-way pendants
  /// unreachable from the core); without it core ids equal the originals
  /// and detours are zero.
  using ResolvedTargets = ResolvedTargetSet;

  /// Resolves a target list for repeated use against many sources.
  ResolvedTargets ResolveTargets(std::span<const Vertex> targets) const;

  /// ResolveTargets into a caller-owned (typically reused) instance: vectors
  /// are resized in place, so a warm `rt` resolves without allocating.
  void ResolveTargetsInto(std::span<const Vertex> targets,
                          ResolvedTargets* rt) const;

  /// Computes out[i] = d(source -> targets.original[i]) for i in
  /// [begin, end); `out` points at the full row. Disjoint ranges may be
  /// filled concurrently from different threads.
  void BatchQueryResolved(Vertex source, const ResolvedTargets& targets,
                          size_t begin, size_t end, Dist* out) const;

  /// Number of vertices of the indexed digraph (before contraction).
  size_t NumVertices() const { return num_vertices_; }

  /// True when the index carries route hints (built with route_hints, or
  /// loaded from an HC2D0003 file) and can unpack paths without a digraph.
  bool HasRouteHints() const { return !out_hints_.base.empty(); }

  /// Reconstructs one shortest directed path s -> t: out->vertices holds the
  /// full original-id sequence (s first, t last; the single vertex for
  /// s == t; empty when t is unreachable from s) and out->weight the path
  /// weight, always equal to Query(s, t). Every consecutive pair is a real
  /// arc of the digraph, traversed in its direction. Errors:
  /// kFailedPrecondition (no route hints), kInternal (corrupt hint store).
  Status Route(Vertex s, Vertex t, RoutePath* out) const;

  /// Up to k alternative directed routes s -> t, sorted ascending by weight;
  /// the first is Route's shortest path. Alternatives route via the other
  /// separator hubs of the pair's LCA level, deduped plateaux-style. Error
  /// contract as Route.
  Status Routes(Vertex s, Vertex t, size_t k,
                std::vector<RoutePath>* out) const;

  /// Vertices surviving into the labelled core (== NumVertices() without
  /// contraction).
  size_t NumCoreVertices() const { return out_labels_.base.size() - 1; }

  /// Vertices removed by degree-one contraction (0 when disabled).
  size_t NumContracted() const {
    return contraction_ == nullptr ? 0 : contraction_->NumContracted();
  }

  const BalancedTreeHierarchy& Hierarchy() const { return hierarchy_; }

  /// Total stored distance entries (both directions, padding excluded).
  size_t NumEntries() const;

  /// Logical label size in bytes (distance data + per-level offsets, both
  /// directions) — same definition as the undirected Hc2lStats::label_bytes.
  size_t LabelLogicalBytes() const;

  /// Resident label storage in bytes (aligned arenas + offset tables).
  size_t LabelSizeBytes() const;

  /// Serializes the index (hierarchy + both label stores). Hint-less
  /// indexes keep the legacy layouts — HC2D0001 without contraction
  /// (readable by pre-contraction builds), HC2D0002 with it — while
  /// hint-carrying indexes write the sectioned, mmap-able HC2D0004 (a
  /// 64-byte-aligned section table; metadata plus the four raw arenas as
  /// separate sections).
  Status Save(const std::string& path) const;

  /// Loads an index previously written by Save() — HC2D0001, HC2D0002,
  /// HC2D0003 or HC2D0004 (the latter two restore route hints). Errors:
  /// kNotFound (cannot open), kInvalidArgument (not a directed HC2L file),
  /// kDataLoss (truncated or corrupt).
  static Result<DirectedHc2lIndex> Load(const std::string& path);

  /// Load with an explicit open mode. With use_mmap and an HC2D0004 file the
  /// four arenas are mapped in place (O(1) open: only the metadata section
  /// is parsed and the label pages are advised MADV_RANDOM); legacy formats
  /// ignore the flag and deserialize onto the heap. A mapped index answers
  /// queries identically to a heap-loaded one.
  static Result<DirectedHc2lIndex> Load(const std::string& path,
                                        bool use_mmap);

  /// Bytes of label/hint storage (arenas + offset tables) backed by a file
  /// mapping rather than the heap (0 for heap-loaded or built indexes).
  size_t MappedBytes() const;

  /// Total arena and offset-table bytes of all four stores regardless of
  /// backing; ArenaResidentBytes() - MappedBytes() is what the label
  /// structures hold on the heap.
  size_t ArenaResidentBytes() const;

 private:
  DirectedHc2lIndex() = default;
  friend class DirectedHc2lBuilder;

  /// Query over core ids (labels + hierarchy only).
  Dist CoreQuery(Vertex s, Vertex t) const;

  /// Hint-store walk over core ids: the full core-id shortest directed path
  /// cs..ct (inclusive; cleared first) into *out. Requires HasRouteHints().
  Status CoreRoute(Vertex cs, Vertex ct, std::vector<Vertex>* out) const;

  /// Maps a core-id path back to original ids and splices s's upward and
  /// t's downward pendant chains around it (`weight` is the known total).
  Status ExpandRoute(Vertex s, Vertex t, Dist weight,
                     const std::vector<Vertex>& core_path,
                     RoutePath* out) const;

  /// Original vertex count (the core count plus contracted pendants).
  uint64_t num_vertices_ = 0;
  /// Pendant contraction; null when options.contract_degree_one == false
  /// (then core ids == original ids).
  std::unique_ptr<DirectedDegreeOneContraction> contraction_;
  BalancedTreeHierarchy hierarchy_;
  // Cached hierarchy height: BatchQueryResolved's level bucketing must not
  // rescan every tree node per call.
  uint32_t height_ = 0;
  // Per-direction cache-aligned labels, same layout as the undirected index
  // (see LabelStore): out = d(v -> hub), in = d(hub -> v). Indexed by core
  // ids.
  LabelStore out_labels_;
  LabelStore in_labels_;
  // Per-direction route hints, shaped exactly like the matching label store
  // (same offset tables): out entry (v, level, i) is the first core hop of
  // a shortest v -> hub_i path, in entry the predecessor of v on a shortest
  // hub_i -> v path (kInvalidVertex for the hub itself or an unreachable
  // hub). Empty when the index is hint-less.
  LabelStore out_hints_;
  LabelStore in_hints_;
  // Keeps an mmap-backed file alive while any arena above is a view into
  // it; null for heap-loaded or built indexes.
  std::shared_ptr<MappedFile> mapping_;
};

}  // namespace hc2l

#endif  // HC2L_CORE_DIRECTED_HC2L_H_
