#ifndef HC2L_CORE_INDEX_FORMAT_H_
#define HC2L_CORE_INDEX_FORMAT_H_

#include <cstdint>

namespace hc2l {

/// On-disk format magics, the first 8 bytes of every serialized index.
/// Router::Open sniffs these to pick the right loader; each index's Load
/// rejects the other's files with kInvalidArgument.

/// Undirected index, format 2: stats, optional contraction, hierarchy,
/// cache-aligned label store. The constant packs the ASCII bytes of
/// "HC2L0002" big-endian ('H' = 0x48 in the most-significant byte), so an
/// on-disk file written on a little-endian machine begins with the bytes
/// "2000L2CH".
inline constexpr uint64_t kHc2lIndexMagic = 0x4843324c30303032ULL;

/// Directed index, format 1: vertex count, height, hierarchy, out- and
/// in-label stores ("HC2D0001", packed the same way). Still written for
/// indexes built without degree-one contraction and still loadable.
inline constexpr uint64_t kDirectedIndexMagic = 0x4843324430303031ULL;

/// Directed index, format 2 ("HC2D0002"): format 1 plus the degree-one
/// contraction mapping (counts, then the per-vertex root/parent/depth
/// arrays and the per-direction pendant weights and root distances; the
/// core-id mappings are derivable and reconstructed at load) between the
/// header and the hierarchy. Written for contracted indexes.
inline constexpr uint64_t kDirectedIndexMagicV2 = 0x4843324430303032ULL;

/// Undirected index, format 3 ("HC2L0003"): format 2 plus a second label
/// store of route hints appended after the distance store. The hint store
/// has the same per-vertex/per-level shape as the label store; each entry
/// is the first core-graph hop from the vertex toward that level's hub
/// (kInvalidVertex for the hub itself or an unreachable hub). Written only
/// when the index was built with route hints; hint-less indexes keep the
/// HC2L0002 format so older readers stay compatible.
inline constexpr uint64_t kHc2lIndexMagicV3 = 0x4843324c30303033ULL;

/// Directed index, format 3 ("HC2D0003"): a uint8 has-contraction marker
/// after the header (collapsing the V1/V2 split), then the V2 body followed
/// by two hint stores — out-hints (first hop of v -> hub) and in-hints
/// (predecessor on the hub -> v path), shaped like the out-/in-label
/// stores. Written only for hint-carrying indexes.
inline constexpr uint64_t kDirectedIndexMagicV3 = 0x4843324430303033ULL;

}  // namespace hc2l

#endif  // HC2L_CORE_INDEX_FORMAT_H_
