#ifndef HC2L_CORE_INDEX_FORMAT_H_
#define HC2L_CORE_INDEX_FORMAT_H_

#include <cstdint>

namespace hc2l {

/// On-disk format magics, the first 8 bytes of every serialized index.
/// Router::Open sniffs these to pick the right loader; each index's Load
/// rejects the other's files with kInvalidArgument.

/// Undirected index, format 2: stats, optional contraction, hierarchy,
/// cache-aligned label store. The constant packs the ASCII bytes of
/// "HC2L0002" big-endian ('H' = 0x48 in the most-significant byte), so an
/// on-disk file written on a little-endian machine begins with the bytes
/// "2000L2CH".
inline constexpr uint64_t kHc2lIndexMagic = 0x4843324c30303032ULL;

/// Directed index, format 1: vertex count, height, hierarchy, out- and
/// in-label stores ("HC2D0001", packed the same way). Still written for
/// indexes built without degree-one contraction and still loadable.
inline constexpr uint64_t kDirectedIndexMagic = 0x4843324430303031ULL;

/// Directed index, format 2 ("HC2D0002"): format 1 plus the degree-one
/// contraction mapping (counts, then the per-vertex root/parent/depth
/// arrays and the per-direction pendant weights and root distances; the
/// core-id mappings are derivable and reconstructed at load) between the
/// header and the hierarchy. Written for contracted indexes.
inline constexpr uint64_t kDirectedIndexMagicV2 = 0x4843324430303032ULL;

/// Undirected index, format 3 ("HC2L0003"): format 2 plus a second label
/// store of route hints appended after the distance store. The hint store
/// has the same per-vertex/per-level shape as the label store; each entry
/// is the first core-graph hop from the vertex toward that level's hub
/// (kInvalidVertex for the hub itself or an unreachable hub). Written only
/// when the index was built with route hints; hint-less indexes keep the
/// HC2L0002 format so older readers stay compatible.
inline constexpr uint64_t kHc2lIndexMagicV3 = 0x4843324c30303033ULL;

/// Directed index, format 3 ("HC2D0003"): a uint8 has-contraction marker
/// after the header (collapsing the V1/V2 split), then the V2 body followed
/// by two hint stores — out-hints (first hop of v -> hub) and in-hints
/// (predecessor on the hub -> v path), shaped like the out-/in-label
/// stores. Written only for hint-carrying indexes.
inline constexpr uint64_t kDirectedIndexMagicV3 = 0x4843324430303033ULL;

/// Undirected index, format 4 ("HC2L0004"): the mmap-able sectioned layout.
/// After the magic comes a section table (count, then {id, offset, bytes}
/// triples) and 64-byte-aligned section payloads: a metadata section (the V3
/// body with each label store's arena replaced by its entry count) and one
/// raw arena section per store. Because every arena payload starts on a
/// 64-byte file offset, `Open(path, OpenMode::kMmap)` can point the label
/// arenas straight into the mapping — no copy, no O(n) validation scan.
/// This is the written format for hint-carrying undirected indexes since
/// format 4; V3 files remain loadable (heap only). docs/format.md has the
/// byte-level specification.
inline constexpr uint64_t kHc2lIndexMagicV4 = 0x4843324c30303034ULL;

/// Directed index, format 4 ("HC2D0004"): the same sectioned layout over the
/// V3 directed body, with four arena sections (out/in labels, out/in hints).
/// Written for hint-carrying directed indexes since format 4.
inline constexpr uint64_t kDirectedIndexMagicV4 = 0x4843324430303034ULL;

/// Shard manifest ("HC2S0001"): not an index itself but a directory of
/// per-partition index files plus the boundary-vertex tables that make
/// cross-shard queries exact (src/shard/). Router::Open sniffs it like the
/// index magics and opens every member shard.
inline constexpr uint64_t kShardManifestMagic = 0x4843325330303031ULL;

}  // namespace hc2l

#endif  // HC2L_CORE_INDEX_FORMAT_H_
