#include "core/directed_hc2l.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/index_format.h"
#include "core/query_common.h"
#include "partition/balanced_cut.h"
#include "search/directed_dijkstra.h"

namespace hc2l {

namespace {

uint32_t EncodeLabelDistance(Dist d) {
  if (d == kInfDist) return DirectedHc2lIndex::kUnreachableLabel;
  HC2L_CHECK_LT(d, Dist{1} << 31);
  return static_cast<uint32_t>(d);
}

}  // namespace

/// Recursive construction: balanced cuts on the undirected projection,
/// per-direction tail-pruned labels, directed shortcut arcs.
class DirectedHc2lBuilder {
 public:
  DirectedHc2lBuilder(const Digraph& g, const DirectedHc2lOptions& options)
      : options_(options), pool_(options.num_threads) {
    const size_t n = g.NumVertices();
    hierarchy_.node_of_vertex_.assign(n, UINT32_MAX);
    hierarchy_.vertex_code_.assign(n, kRootCode);
    out_label_.resize(n);
    in_label_.resize(n);
    out_lens_.resize(n);
    in_lens_.resize(n);
    std::vector<Vertex> identity(n);
    for (Vertex v = 0; v < n; ++v) identity[v] = v;
    hierarchy_.nodes_.push_back(HierarchyNode{kRootCode, -1, -1, -1, {}});
    Digraph root = g;
    BuildNode(std::move(root), std::move(identity), 0, kRootCode);
  }

  void Finish(DirectedHc2lIndex* index) {
    index->hierarchy_ = std::move(hierarchy_);
    index->height_ = index->hierarchy_.Height();
    index->out_labels_.BuildFrom(&out_label_, &out_lens_);
    index->in_labels_.BuildFrom(&in_label_, &in_lens_);
  }

 private:
  void BuildNode(Digraph sub, std::vector<Vertex> to_global, int32_t node_idx,
                 TreeCode code) {
    const size_t n = sub.NumVertices();
    const uint32_t depth = TreeCodeDepth(code);

    BalancedCutResult bc;
    bool is_leaf = n <= options_.leaf_size || depth >= kMaxTreeDepth;
    if (!is_leaf) {
      bc = BalancedCut(sub.UndirectedProjection(), options_.beta);
      is_leaf = bc.part_a.empty() && bc.part_b.empty();
    }
    std::vector<Vertex> cut;
    if (is_leaf) {
      cut.resize(n);
      for (Vertex v = 0; v < n; ++v) cut[v] = v;
    } else {
      cut = std::move(bc.cut);
    }

    const size_t m = cut.size();
    std::vector<DistAndPruneResult> fwd(m);  // d(cut_i -> u), prunes in-side
    std::vector<DistAndPruneResult> bwd(m);  // d(u -> cut_i), prunes out-side
    if (m == 0) {
      for (Vertex v = 0; v < n; ++v) {
        out_lens_[to_global[v]].push_back(0);
        in_lens_[to_global[v]].push_back(0);
      }
    } else {
      RankAndLabel(sub, &cut, to_global, node_idx, code, &fwd, &bwd);
    }
    if (is_leaf) return;

    for (int side = 0; side < 2; ++side) {
      const std::vector<Vertex>& part = side == 0 ? bc.part_a : bc.part_b;
      if (part.empty()) continue;
      std::vector<DirectedArc> shortcuts =
          ComputeDirectedShortcuts(sub, cut, part, fwd, bwd);
      Subdigraph child = InducedSubdigraph(sub, part, shortcuts);
      std::vector<Vertex> child_to_global;
      child_to_global.reserve(part.size());
      for (Vertex v : child.to_parent) child_to_global.push_back(to_global[v]);
      const TreeCode child_code = TreeCodeChild(code, side);
      hierarchy_.nodes_.push_back(
          HierarchyNode{child_code, node_idx, -1, -1, {}});
      const int32_t child_idx =
          static_cast<int32_t>(hierarchy_.nodes_.size() - 1);
      (side == 0 ? hierarchy_.nodes_[node_idx].left
                 : hierarchy_.nodes_[node_idx].right) = child_idx;
      BuildNode(std::move(child.graph), std::move(child_to_global), child_idx,
                child_code);
    }
  }

  /// Ranks the cut (sum of both directions' coverability, ascending), runs
  /// the per-direction prefix-tracking Dijkstras, and emits the two label
  /// arrays per subgraph vertex.
  void RankAndLabel(const Digraph& sub, std::vector<Vertex>* cut,
                    const std::vector<Vertex>& to_global, int32_t node_idx,
                    TreeCode code, std::vector<DistAndPruneResult>* fwd,
                    std::vector<DistAndPruneResult>* bwd) {
    const size_t n = sub.NumVertices();
    const size_t m = cut->size();

    if (options_.tail_pruning && m > 1) {
      std::vector<uint8_t> in_cut(n, 0);
      for (Vertex v : *cut) in_cut[v] = 1;
      std::vector<uint64_t> score(m, 0);
      pool_.ParallelFor(m, [&](size_t i) {
        const auto f = DirectedDistAndPrune(sub, (*cut)[i],
                                            SearchDirection::kForward, in_cut);
        const auto b = DirectedDistAndPrune(
            sub, (*cut)[i], SearchDirection::kBackward, in_cut);
        for (Vertex v = 0; v < n; ++v) score[i] += f.via[v] + b.via[v];
      });
      ApplyCoverabilityOrder(cut, score, to_global);
    } else {
      std::sort(cut->begin(), cut->end(), [&](Vertex a, Vertex b) {
        return to_global[a] < to_global[b];
      });
    }

    // Prefix-tracking Dijkstras; the tracked set of v_i is {v_0 .. v_{i-1}}
    // and both directions of one cut vertex share its prefix mask. The
    // serial/parallel mask dispatch is the shared RunPrefixMaskedSearches
    // helper.
    RunPrefixMaskedSearches(
        pool_, options_.tail_pruning, *cut, n,
        [&](size_t i, const std::vector<uint8_t>& mask) {
          (*fwd)[i] = DirectedDistAndPrune(sub, (*cut)[i],
                                           SearchDirection::kForward, mask);
          (*bwd)[i] = DirectedDistAndPrune(sub, (*cut)[i],
                                           SearchDirection::kBackward, mask);
        });

    for (Vertex v = 0; v < n; ++v) {
      size_t k_in = 0;
      size_t k_out = 0;
      for (size_t i = 0; i < m; ++i) {
        if ((*fwd)[i].via[v] == 0) k_in = i;
        if ((*bwd)[i].via[v] == 0) k_out = i;
      }
      auto& in_data = in_label_[to_global[v]];
      for (size_t i = 0; i <= k_in; ++i) {
        in_data.push_back(EncodeLabelDistance((*fwd)[i].dist[v]));
      }
      in_lens_[to_global[v]].push_back(static_cast<uint32_t>(k_in + 1));
      auto& out_data = out_label_[to_global[v]];
      for (size_t i = 0; i <= k_out; ++i) {
        out_data.push_back(EncodeLabelDistance((*bwd)[i].dist[v]));
      }
      out_lens_[to_global[v]].push_back(static_cast<uint32_t>(k_out + 1));
    }

    HierarchyNode& node = hierarchy_.nodes_[node_idx];
    node.cut.reserve(m);
    for (Vertex v : *cut) {
      const Vertex global = to_global[v];
      node.cut.push_back(global);
      hierarchy_.node_of_vertex_[global] = static_cast<uint32_t>(node_idx);
      hierarchy_.vertex_code_[global] = code;
    }
  }

  /// Directed Algorithm 3: shortcut arcs that make the child sub-digraph
  /// distance-preserving in both directions.
  std::vector<DirectedArc> ComputeDirectedShortcuts(
      const Digraph& sub, const std::vector<Vertex>& cut,
      const std::vector<Vertex>& part,
      const std::vector<DistAndPruneResult>& fwd,
      const std::vector<DistAndPruneResult>& bwd) {
    const size_t n = sub.NumVertices();
    std::vector<uint8_t> in_cut(n, 0);
    for (Vertex v : cut) in_cut[v] = 1;

    std::vector<Vertex> border;
    for (Vertex v : part) {
      bool touches = false;
      for (const Arc& a : sub.OutArcs(v)) touches |= in_cut[a.to] != 0;
      for (const Arc& a : sub.InArcs(v)) touches |= in_cut[a.to] != 0;
      if (touches) border.push_back(v);
    }
    const size_t b = border.size();
    if (b < 2) return {};

    Subdigraph gp = InducedSubdigraph(sub, part);
    std::vector<Vertex> to_child(n, kInvalidVertex);
    for (size_t i = 0; i < part.size(); ++i) to_child[part[i]] = i;

    // d_GP(border_i -> border_j), forward Dijkstras inside G[P].
    std::vector<std::vector<Dist>> d_gp(b, std::vector<Dist>(b));
    for (size_t i = 0; i < b; ++i) {
      const auto dist = DirectedDistancesFrom(gp.graph, to_child[border[i]],
                                              SearchDirection::kForward);
      for (size_t j = 0; j < b; ++j) d_gp[i][j] = dist[to_child[border[j]]];
    }

    // True directed distances: best of in-partition and via-cut routes.
    std::vector<std::vector<Dist>> d_g = d_gp;
    for (size_t i = 0; i < b; ++i) {
      for (size_t j = 0; j < b; ++j) {
        if (i == j) continue;
        Dist through_cut = kInfDist;
        for (size_t c = 0; c < cut.size(); ++c) {
          const Dist to_c = bwd[c].dist[border[i]];    // d(border_i -> cut_c)
          const Dist from_c = fwd[c].dist[border[j]];  // d(cut_c -> border_j)
          if (to_c == kInfDist || from_c == kInfDist) continue;
          through_cut = std::min(through_cut, to_c + from_c);
        }
        d_g[i][j] = std::min(d_gp[i][j], through_cut);
      }
    }

    std::vector<DirectedArc> shortcuts;
    for (size_t i = 0; i < b; ++i) {
      for (size_t j = 0; j < b; ++j) {
        if (i == j || d_g[i][j] >= d_gp[i][j]) continue;
        bool redundant = false;
        for (size_t k = 0; k < b && !redundant; ++k) {
          if (k == i || k == j) continue;
          if (d_g[i][k] != kInfDist && d_g[k][j] != kInfDist &&
              d_g[i][k] + d_g[k][j] == d_g[i][j]) {
            redundant = true;
          }
        }
        if (!redundant) {
          HC2L_CHECK_LE(d_g[i][j], std::numeric_limits<Weight>::max());
          shortcuts.push_back(
              {border[i], border[j], static_cast<Weight>(d_g[i][j])});
        }
      }
    }
    return shortcuts;
  }

  const DirectedHc2lOptions options_;
  ThreadPool pool_;
  BalancedTreeHierarchy hierarchy_;
  std::vector<std::vector<uint32_t>> out_label_, in_label_;
  std::vector<std::vector<uint32_t>> out_lens_, in_lens_;
};

DirectedHc2lIndex DirectedHc2lIndex::Build(const Digraph& g,
                                           const DirectedHc2lOptions& options) {
  HC2L_CHECK_GT(options.beta, 0.0);
  HC2L_CHECK_LE(options.beta, 0.5);
  DirectedHc2lIndex index;
  index.num_vertices_ = g.NumVertices();
  const Digraph* core = &g;
  if (options.contract_degree_one) {
    index.contraction_ = std::make_unique<DirectedDegreeOneContraction>(g);
    core = &index.contraction_->CoreGraph();
  }
  DirectedHc2lBuilder builder(*core, options);
  builder.Finish(&index);
  return index;
}

Dist DirectedHc2lIndex::Query(Vertex s, Vertex t) const {
  HC2L_CHECK_LT(s, NumVertices());
  HC2L_CHECK_LT(t, NumVertices());
  if (s == t) return 0;
  if (contraction_ == nullptr) return CoreQuery(s, t);

  const Vertex root_s = contraction_->RootCoreId(s);
  const Vertex root_t = contraction_->RootCoreId(t);
  if (root_s == root_t) return contraction_->SameTreeDistance(s, t);
  // Cross-tree: every s -> t path climbs s's chain to its root, crosses the
  // core, and descends t's chain — a one-way pendant broken in the needed
  // direction makes the whole answer unreachable.
  const Dist up = contraction_->DistToRoot(s);
  const Dist down = contraction_->DistFromRoot(t);
  if (up == kInfDist || down == kInfDist) return kInfDist;
  const Dist core = CoreQuery(root_s, root_t);
  return AddDist(AddDist(up, core), down);
}

Dist DirectedHc2lIndex::CoreQuery(Vertex s, Vertex t) const {
  if (s == t) return 0;
  const uint32_t level = hierarchy_.LcaLevel(s, t);
  const uint32_t s_idx = out_labels_.base[s] + level;
  const uint32_t t_idx = in_labels_.base[t] + level;
  const uint32_t* a = out_labels_.arena.data() + out_labels_.level_start[s_idx];
  const uint32_t* b = in_labels_.arena.data() + in_labels_.level_start[t_idx];
  const uint32_t len = std::min(out_labels_.level_len[s_idx],
                                in_labels_.level_len[t_idx]);
  simd::PrefetchArray(a, len * sizeof(uint32_t));
  simd::PrefetchArray(b, len * sizeof(uint32_t));
  const uint32_t best = simd::MinPlusPadded(a, b, len);
  return best >= kUnreachableLabel ? kInfDist : best;
}

DirectedHc2lIndex::ResolvedTargets DirectedHc2lIndex::ResolveTargets(
    std::span<const Vertex> targets) const {
  ResolvedTargets rt;
  ResolveTargetsInto(targets, &rt);
  return rt;
}

void DirectedHc2lIndex::ResolveTargetsInto(std::span<const Vertex> targets,
                                           ResolvedTargets* rt) const {
  const size_t n = targets.size();
  rt->original.assign(targets.begin(), targets.end());
  rt->core.resize(n);
  rt->detour.resize(n);
  rt->code.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Vertex t = targets[i];
    HC2L_CHECK_LT(t, NumVertices());
    Vertex root = t;
    Dist detour = 0;
    if (contraction_ != nullptr) {
      root = contraction_->RootCoreId(t);
      detour = contraction_->DistFromRoot(t);
    }
    rt->core[i] = root;
    rt->detour[i] = detour;
    rt->code[i] = hierarchy_.CodeOf(root);
  }
}

void DirectedHc2lIndex::BatchQueryResolved(Vertex source,
                                           const ResolvedTargets& rt,
                                           size_t begin, size_t end,
                                           Dist* out) const {
  HC2L_CHECK_LT(source, NumVertices());
  HC2L_CHECK_LE(begin, end);
  HC2L_CHECK_LE(end, rt.size());
  if (begin == end) return;

  // Source side hoisted for the batch: contraction root, upward detour,
  // tree code and out-array base. The shared pass 1 answers the trivial
  // cases inline and collects the rest; the shared level sweep min-reduces
  // the source's out-arrays against the targets' in-arrays. Working memory
  // is the calling thread's reusable scratch.
  Vertex root_s = source;
  Dist source_offset = 0;
  if (contraction_ != nullptr) {
    root_s = contraction_->RootCoreId(source);
    source_offset = contraction_->DistToRoot(source);
  }
  const TreeCode s_code = hierarchy_.CodeOf(root_s);
  const uint32_t s_base = out_labels_.base[root_s];
  QueryScratch& scratch = TlsQueryScratch();
  CollectPendingTargets(
      rt, begin, end, source, root_s, source_offset, s_code,
      contraction_ != nullptr,
      [&](Vertex t) { return contraction_->SameTreeDistance(source, t); },
      &scratch, out);
  SweepPendingByLevel(out_labels_, in_labels_, s_base, height_, &scratch, out);
}

std::vector<Dist> DirectedHc2lIndex::BatchQuery(
    Vertex source, std::span<const Vertex> targets) const {
  std::vector<Dist> out(targets.size(), kInfDist);
  BatchQueryInto(source, targets, out.data());
  return out;
}

void DirectedHc2lIndex::BatchQueryInto(Vertex source,
                                       std::span<const Vertex> targets,
                                       Dist* out) const {
  if (targets.empty()) return;
  // Unlike the undirected index there is no fused single-call variant:
  // directed resolution is a handful of array reads per target, so
  // delegating through a thread-local ResolvedTargets costs next to nothing
  // and keeps the path allocation-free once warm.
  static thread_local ResolvedTargets rt;
  ResolveTargetsInto(targets, &rt);
  BatchQueryResolved(source, rt, 0, rt.size(), out);
}

std::vector<std::vector<Dist>> DirectedHc2lIndex::DistanceMatrix(
    std::span<const Vertex> sources, std::span<const Vertex> targets) const {
  // Same tiling rationale as the undirected index: one resolution per
  // matrix, tiles of target in-arrays kept hot across sources.
  std::vector<std::vector<Dist>> matrix(
      sources.size(), std::vector<Dist>(targets.size(), kInfDist));
  if (sources.empty() || targets.empty()) return matrix;
  TiledDistanceMatrix(*this, ResolveTargets(targets), sources, &matrix);
  return matrix;
}

std::vector<std::pair<Dist, Vertex>> DirectedHc2lIndex::KNearest(
    Vertex source, std::span<const Vertex> candidates, size_t k) const {
  const std::vector<Dist> dists = BatchQuery(source, candidates);
  return SelectKNearest(dists, candidates, k);
}

// Directed format 1 ("HC2D0001", src/core/index_format.h): vertex count,
// height, hierarchy, out- and in-label stores. Format 2 ("HC2D0002")
// prepends the degree-one contraction mapping (sizes first, then the
// per-vertex arrays) before the hierarchy. Uncontracted indexes keep
// writing format 1 so pre-contraction readers still load them; Load accepts
// both.
Status DirectedHc2lIndex::Save(const std::string& path) const {
  io::FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  bool ok;
  if (contraction_ == nullptr) {
    const uint64_t num_vertices = NumVertices();
    ok = io::WriteValue(f.get(), kDirectedIndexMagic) &&
         io::WriteValue(f.get(), num_vertices) &&
         io::WriteValue(f.get(), height_);
  } else {
    const DirectedDegreeOneContraction& c = *contraction_;
    const uint64_t num_vertices = num_vertices_;
    const uint64_t num_contracted = c.num_contracted_;
    // core_id_ / to_original_ are derivable (a vertex is in the core iff
    // its depth is 0, and its core id is then its root id), so the format
    // does not carry them; Load reconstructs both.
    ok = io::WriteValue(f.get(), kDirectedIndexMagicV2) &&
         io::WriteValue(f.get(), num_vertices) &&
         io::WriteValue(f.get(), num_contracted) &&
         io::WriteValue(f.get(), height_) &&
         io::WriteVector(f.get(), c.root_core_id_) &&
         io::WriteVector(f.get(), c.parent_) &&
         io::WriteVector(f.get(), c.depth_) &&
         io::WriteVector(f.get(), c.up_weight_) &&
         io::WriteVector(f.get(), c.down_weight_) &&
         io::WriteVector(f.get(), c.up_dist_) &&
         io::WriteVector(f.get(), c.down_dist_);
  }
  ok = ok && hierarchy_.WriteTo(f.get()) &&
       io::WriteLabelStore(f.get(), out_labels_) &&
       io::WriteLabelStore(f.get(), in_labels_);
  if (!ok) {
    return Status::Unavailable("write error on " + path);
  }
  return Status::Ok();
}

Result<DirectedHc2lIndex> DirectedHc2lIndex::Load(const std::string& path) {
  io::FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  io::Reader reader(f.get());
  io::Reader* r = &reader;
  uint64_t magic = 0;
  if (!io::ReadValue(r, &magic) ||
      (magic != kDirectedIndexMagic && magic != kDirectedIndexMagicV2)) {
    return Status::InvalidArgument("not a directed HC2L index file: " + path);
  }
  DirectedHc2lIndex index;
  uint64_t num_vertices = 0;
  uint64_t num_contracted = 0;
  uint32_t stored_height = 0;
  bool ok = io::ReadValue(r, &num_vertices);
  if (ok && magic == kDirectedIndexMagicV2) {
    index.contraction_ = std::unique_ptr<DirectedDegreeOneContraction>(
        new DirectedDegreeOneContraction());
    DirectedDegreeOneContraction& c = *index.contraction_;
    ok = io::ReadValue(r, &num_contracted) &&
         io::ReadValue(r, &stored_height) &&
         io::ReadVector(r, &c.root_core_id_) &&
         io::ReadVector(r, &c.parent_) &&
         io::ReadVector(r, &c.depth_) &&
         io::ReadVector(r, &c.up_weight_) &&
         io::ReadVector(r, &c.down_weight_) &&
         io::ReadVector(r, &c.up_dist_) &&
         io::ReadVector(r, &c.down_dist_);
    c.num_contracted_ = num_contracted;
  } else {
    ok = ok && io::ReadValue(r, &stored_height);
  }
  ok = ok && index.hierarchy_.ReadFrom(r) &&
       io::ReadLabelStore(r, &index.out_labels_) &&
       io::ReadLabelStore(r, &index.in_labels_);
  // Same query-path hardening as the undirected Load (see hc2l.cc): code
  // tables must cover every core vertex and both directions must hold at
  // least depth+1 arrays per vertex; the stores' own structure was validated
  // in ReadLabelStore. With a contraction the per-vertex mapping arrays must
  // cover every original vertex and point inside the core, so the query
  // paths never index out of bounds. Files from adversarial sources remain
  // unsupported.
  if (ok) {
    const size_t core = index.out_labels_.base.size() - 1;
    ok = index.in_labels_.base.size() == core + 1 &&
         index.hierarchy_.vertex_code_.size() == core &&
         index.hierarchy_.node_of_vertex_.size() == core;
    for (size_t v = 0; ok && v < core; ++v) {
      const uint32_t depth = TreeCodeDepth(index.hierarchy_.vertex_code_[v]);
      ok = index.out_labels_.base[v + 1] - index.out_labels_.base[v] >=
               depth + 1 &&
           index.in_labels_.base[v + 1] - index.in_labels_.base[v] >=
               depth + 1;
    }
    if (ok && index.contraction_ != nullptr) {
      DirectedDegreeOneContraction& c = *index.contraction_;
      const size_t n = num_vertices;
      ok = core + num_contracted == n && c.root_core_id_.size() == n &&
           c.parent_.size() == n && c.depth_.size() == n &&
           c.up_weight_.size() == n && c.down_weight_.size() == n &&
           c.up_dist_.size() == n && c.down_dist_.size() == n;
      for (size_t v = 0; ok && v < n; ++v) {
        ok = c.root_core_id_[v] < core && c.parent_[v] < n;
      }
      // Reconstruct the derived mappings; doing so doubles as the
      // consistency check that the depth-0 set maps one-to-one onto the
      // core.
      if (ok) {
        c.core_id_.assign(n, kInvalidVertex);
        c.to_original_.assign(core, kInvalidVertex);
        for (size_t v = 0; ok && v < n; ++v) {
          if (c.depth_[v] != 0) continue;
          const Vertex id = c.root_core_id_[v];
          ok = c.to_original_[id] == kInvalidVertex;
          c.to_original_[id] = static_cast<Vertex>(v);
          c.core_id_[v] = id;
        }
        for (size_t i = 0; ok && i < core; ++i) {
          ok = c.to_original_[i] != kInvalidVertex;
        }
      }
    } else if (ok) {
      ok = core == num_vertices;
    }
  }
  if (!ok) {
    return Status::DataLoss("truncated or corrupt directed HC2L index file: " +
                            path);
  }
  index.num_vertices_ = num_vertices;
  // The stored height is informational; the level bucketing's bound is
  // recomputed so it always agrees with the validated codes.
  index.height_ = index.hierarchy_.LevelBound();
  return index;
}

size_t DirectedHc2lIndex::NumEntries() const {
  const auto sum = [](const LabelStore& labels) {
    return std::accumulate(labels.level_len.begin(), labels.level_len.end(),
                           uint64_t{0});
  };
  return static_cast<size_t>(sum(out_labels_) + sum(in_labels_));
}

size_t DirectedHc2lIndex::LabelLogicalBytes() const {
  return NumEntries() * sizeof(uint32_t) + out_labels_.MetadataBytes() +
         in_labels_.MetadataBytes();
}

size_t DirectedHc2lIndex::LabelSizeBytes() const {
  return out_labels_.ResidentBytes() + in_labels_.ResidentBytes();
}

}  // namespace hc2l
