#include "core/directed_hc2l.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/section_file.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/index_format.h"
#include "core/query_common.h"
#include "partition/balanced_cut.h"
#include "search/directed_dijkstra.h"

namespace hc2l {

namespace {

uint32_t EncodeLabelDistance(Dist d) {
  if (d == kInfDist) return DirectedHc2lIndex::kUnreachableLabel;
  HC2L_CHECK_LT(d, Dist{1} << 31);
  return static_cast<uint32_t>(d);
}

// --- Directed route-hint machinery, the dual-CSR port of the undirected
// annotation propagation (see hc2l.cc): every subgraph arc carries, per
// direction, the provenance of the shortest core path it stands for — the
// out-annotation is the first real core hop leaving the arc's tail, the
// in-annotation the real core predecessor of its head. Real arcs annotate
// themselves; shortcut arcs inherit from the witness arcs of their
// through-the-cut path.

/// Per-direction arc-offset prefix array: arc j of OutArcs(v) (or InArcs(v))
/// is entry base[v] + j of the matching annotation vector.
std::vector<size_t> DirectedArcBases(const Digraph& g, bool out) {
  const size_t n = g.NumVertices();
  std::vector<size_t> base(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    base[v + 1] = base[v] + (out ? g.OutArcs(v) : g.InArcs(v)).size();
  }
  return base;
}

/// Per-arc annotations of one subgraph, both directions.
struct DirectedAnnotations {
  std::vector<Vertex> out;  // indexed like the out-CSR
  std::vector<Vertex> in;   // indexed like the in-CSR
};

/// Root annotations over the core digraph: every arc is real, so the
/// out-annotation of v -> w is w and the in-annotation of w's in-arc from v
/// is v (InArcs' Arc::to is the source, so both loops just push a.to).
DirectedAnnotations RootAnnotations(const Digraph& core) {
  DirectedAnnotations ann;
  ann.out.reserve(core.NumArcs());
  ann.in.reserve(core.NumArcs());
  const size_t n = core.NumVertices();
  for (Vertex v = 0; v < n; ++v) {
    for (const Arc& a : core.OutArcs(v)) ann.out.push_back(a.to);
    for (const Arc& a : core.InArcs(v)) ann.in.push_back(a.to);
  }
  return ann;
}

/// Out-annotation of the first witness out-arc of v under the *backward*
/// distance field db (db[x] = d(x -> root)): the first out-arc with
/// w + db[head] == db[v] — i.e. the first hop of a shortest v -> root path.
Vertex OutWitness(const Digraph& g, const std::vector<Vertex>& out_ann,
                  const std::vector<size_t>& out_base, Vertex v,
                  const std::vector<Dist>& db) {
  const Dist dv = db[v];
  if (dv == 0 || dv == kInfDist) return kInvalidVertex;
  const std::span<const Arc> arcs = g.OutArcs(v);
  for (size_t j = 0; j < arcs.size(); ++j) {
    const Arc& a = arcs[j];
    if (db[a.to] != kInfDist && a.weight + db[a.to] == dv) {
      return out_ann[out_base[v] + j];
    }
  }
  return kInvalidVertex;
}

/// In-annotation of the first witness in-arc of v under the *forward*
/// distance field df (df[x] = d(root -> x)): the first in-arc with
/// df[source] + w == df[v] — the real predecessor of v on a shortest
/// root -> v path.
Vertex InWitness(const Digraph& g, const std::vector<Vertex>& in_ann,
                 const std::vector<size_t>& in_base, Vertex v,
                 const std::vector<Dist>& df) {
  const Dist dv = df[v];
  if (dv == 0 || dv == kInfDist) return kInvalidVertex;
  const std::span<const Arc> arcs = g.InArcs(v);  // a.to is the source
  for (size_t j = 0; j < arcs.size(); ++j) {
    const Arc& a = arcs[j];
    if (df[a.to] != kInfDist && df[a.to] + a.weight == dv) {
      return in_ann[in_base[v] + j];
    }
  }
  return kInvalidVertex;
}

/// Derives a child sub-digraph's annotations from its parent's. A real
/// child arc copies the parent arc's annotations; a shortcut from -> to
/// resolves against its witness cut vertex (first in rank order realizing
/// the shortcut weight as d(from -> cut) + d(cut -> to)): the out side from
/// the backward field at `from`, the in side from the forward field at
/// `to`. Shortcut weights are strictly below any in-partition path, and
/// the builders collapse parallel arcs to minimum weight, so the directed
/// pair lookup is unambiguous.
DirectedAnnotations DeriveChildAnnotations(
    const Digraph& parent, const DirectedAnnotations& parent_ann,
    const std::vector<size_t>& out_base, const std::vector<size_t>& in_base,
    const std::vector<DirectedArc>& shortcuts,
    const std::vector<DistAndPruneResult>& fwd,
    const std::vector<DistAndPruneResult>& bwd, const Digraph& child,
    const std::vector<Vertex>& to_parent) {
  struct ShortcutAnn {
    uint64_t key;  // (parent from) << 32 | parent to
    Vertex out_ann = kInvalidVertex;
    Vertex in_ann = kInvalidVertex;
  };
  std::vector<ShortcutAnn> sc_ann;
  sc_ann.reserve(shortcuts.size());
  for (const DirectedArc& e : shortcuts) {
    ShortcutAnn entry;
    entry.key = (static_cast<uint64_t>(e.from) << 32) | e.to;
    for (size_t c = 0; c < fwd.size(); ++c) {
      if (AddDist(bwd[c].dist[e.from], fwd[c].dist[e.to]) != e.weight) {
        continue;
      }
      entry.out_ann =
          OutWitness(parent, parent_ann.out, out_base, e.from, bwd[c].dist);
      entry.in_ann =
          InWitness(parent, parent_ann.in, in_base, e.to, fwd[c].dist);
      break;
    }
    sc_ann.push_back(entry);
  }
  std::sort(sc_ann.begin(), sc_ann.end(),
            [](const ShortcutAnn& a, const ShortcutAnn& b) {
              return a.key < b.key;
            });
  const auto find_shortcut = [&](Vertex pu, Vertex pv) -> const ShortcutAnn* {
    const uint64_t key = (static_cast<uint64_t>(pu) << 32) | pv;
    const auto it = std::lower_bound(
        sc_ann.begin(), sc_ann.end(), key,
        [](const ShortcutAnn& s, uint64_t k) { return s.key < k; });
    return it != sc_ann.end() && it->key == key ? &*it : nullptr;
  };

  DirectedAnnotations ann;
  ann.out.reserve(child.NumArcs());
  ann.in.reserve(child.NumArcs());
  const size_t n = child.NumVertices();
  for (Vertex cv = 0; cv < n; ++cv) {
    const Vertex pu = to_parent[cv];
    for (const Arc& a : child.OutArcs(cv)) {
      const Vertex pv = to_parent[a.to];
      if (const ShortcutAnn* s = find_shortcut(pu, pv)) {
        ann.out.push_back(s->out_ann);
        continue;
      }
      const std::span<const Arc> parcs = parent.OutArcs(pu);
      Vertex copied = kInvalidVertex;
      for (size_t j = 0; j < parcs.size(); ++j) {
        if (parcs[j].to == pv) {
          copied = parent_ann.out[out_base[pu] + j];
          break;
        }
      }
      ann.out.push_back(copied);
    }
  }
  for (Vertex cv = 0; cv < n; ++cv) {
    const Vertex pv = to_parent[cv];
    for (const Arc& a : child.InArcs(cv)) {
      const Vertex pu = to_parent[a.to];  // source
      if (const ShortcutAnn* s = find_shortcut(pu, pv)) {
        ann.in.push_back(s->in_ann);
        continue;
      }
      const std::span<const Arc> parcs = parent.InArcs(pv);
      Vertex copied = kInvalidVertex;
      for (size_t j = 0; j < parcs.size(); ++j) {
        if (parcs[j].to == pu) {
          copied = parent_ann.in[in_base[pv] + j];
          break;
        }
      }
      ann.in.push_back(copied);
    }
  }
  return ann;
}

}  // namespace

/// Recursive construction: balanced cuts on the undirected projection,
/// per-direction tail-pruned labels, directed shortcut arcs.
class DirectedHc2lBuilder {
 public:
  DirectedHc2lBuilder(const Digraph& g, const DirectedHc2lOptions& options)
      : options_(options), pool_(options.num_threads) {
    const size_t n = g.NumVertices();
    hierarchy_.node_of_vertex_.assign(n, UINT32_MAX);
    hierarchy_.vertex_code_.assign(n, kRootCode);
    out_label_.resize(n);
    in_label_.resize(n);
    out_lens_.resize(n);
    in_lens_.resize(n);
    if (options_.route_hints) {
      out_hint_.resize(n);
      in_hint_.resize(n);
      out_hint_lens_.resize(n);
      in_hint_lens_.resize(n);
    }
    std::vector<Vertex> identity(n);
    for (Vertex v = 0; v < n; ++v) identity[v] = v;
    hierarchy_.nodes_.push_back(HierarchyNode{kRootCode, -1, -1, -1, {}});
    Digraph root = g;
    DirectedAnnotations root_ann =
        options_.route_hints ? RootAnnotations(g) : DirectedAnnotations{};
    BuildNode(std::move(root), std::move(identity), std::move(root_ann), 0,
              kRootCode);
  }

  void Finish(DirectedHc2lIndex* index) {
    index->hierarchy_ = std::move(hierarchy_);
    index->height_ = index->hierarchy_.Height();
    index->out_labels_.BuildFrom(&out_label_, &out_lens_);
    index->in_labels_.BuildFrom(&in_label_, &in_lens_);
    if (options_.route_hints) {
      index->out_hints_.BuildFrom(&out_hint_, &out_hint_lens_);
      index->in_hints_.BuildFrom(&in_hint_, &in_hint_lens_);
    }
  }

 private:
  void BuildNode(Digraph sub, std::vector<Vertex> to_global,
                 DirectedAnnotations ann, int32_t node_idx, TreeCode code) {
    const size_t n = sub.NumVertices();
    const uint32_t depth = TreeCodeDepth(code);

    BalancedCutResult bc;
    bool is_leaf = n <= options_.leaf_size || depth >= kMaxTreeDepth;
    if (!is_leaf) {
      bc = BalancedCut(sub.UndirectedProjection(), options_.beta);
      is_leaf = bc.part_a.empty() && bc.part_b.empty();
    }
    std::vector<Vertex> cut;
    if (is_leaf) {
      cut.resize(n);
      for (Vertex v = 0; v < n; ++v) cut[v] = v;
    } else {
      cut = std::move(bc.cut);
    }

    const size_t m = cut.size();
    std::vector<DistAndPruneResult> fwd(m);  // d(cut_i -> u), prunes in-side
    std::vector<DistAndPruneResult> bwd(m);  // d(u -> cut_i), prunes out-side
    if (m == 0) {
      for (Vertex v = 0; v < n; ++v) {
        out_lens_[to_global[v]].push_back(0);
        in_lens_[to_global[v]].push_back(0);
        if (options_.route_hints) {
          out_hint_lens_[to_global[v]].push_back(0);
          in_hint_lens_[to_global[v]].push_back(0);
        }
      }
    } else {
      RankAndLabel(sub, &cut, to_global, ann, node_idx, code, &fwd, &bwd);
    }
    if (is_leaf) return;

    for (int side = 0; side < 2; ++side) {
      const std::vector<Vertex>& part = side == 0 ? bc.part_a : bc.part_b;
      if (part.empty()) continue;
      std::vector<DirectedArc> shortcuts =
          ComputeDirectedShortcuts(sub, cut, part, fwd, bwd);
      Subdigraph child = InducedSubdigraph(sub, part, shortcuts);
      std::vector<Vertex> child_to_global;
      child_to_global.reserve(part.size());
      for (Vertex v : child.to_parent) child_to_global.push_back(to_global[v]);
      DirectedAnnotations child_ann;
      if (options_.route_hints) {
        child_ann = DeriveChildAnnotations(
            sub, ann, DirectedArcBases(sub, /*out=*/true),
            DirectedArcBases(sub, /*out=*/false), shortcuts, fwd, bwd,
            child.graph, child.to_parent);
      }
      const TreeCode child_code = TreeCodeChild(code, side);
      hierarchy_.nodes_.push_back(
          HierarchyNode{child_code, node_idx, -1, -1, {}});
      const int32_t child_idx =
          static_cast<int32_t>(hierarchy_.nodes_.size() - 1);
      (side == 0 ? hierarchy_.nodes_[node_idx].left
                 : hierarchy_.nodes_[node_idx].right) = child_idx;
      BuildNode(std::move(child.graph), std::move(child_to_global),
                std::move(child_ann), child_idx, child_code);
    }
  }

  /// Ranks the cut (sum of both directions' coverability, ascending), runs
  /// the per-direction prefix-tracking Dijkstras, and emits the two label
  /// arrays per subgraph vertex — plus, in hint mode, the two hint arrays
  /// (out: first hop toward each hub, in: predecessor from each hub) in
  /// lockstep with the label entries.
  void RankAndLabel(const Digraph& sub, std::vector<Vertex>* cut,
                    const std::vector<Vertex>& to_global,
                    const DirectedAnnotations& ann, int32_t node_idx,
                    TreeCode code, std::vector<DistAndPruneResult>* fwd,
                    std::vector<DistAndPruneResult>* bwd) {
    const size_t n = sub.NumVertices();
    const size_t m = cut->size();

    if (options_.tail_pruning && m > 1) {
      std::vector<uint8_t> in_cut(n, 0);
      for (Vertex v : *cut) in_cut[v] = 1;
      std::vector<uint64_t> score(m, 0);
      pool_.ParallelFor(m, [&](size_t i) {
        const auto f = DirectedDistAndPrune(sub, (*cut)[i],
                                            SearchDirection::kForward, in_cut);
        const auto b = DirectedDistAndPrune(
            sub, (*cut)[i], SearchDirection::kBackward, in_cut);
        for (Vertex v = 0; v < n; ++v) score[i] += f.via[v] + b.via[v];
      });
      ApplyCoverabilityOrder(cut, score, to_global);
    } else {
      std::sort(cut->begin(), cut->end(), [&](Vertex a, Vertex b) {
        return to_global[a] < to_global[b];
      });
    }

    // Prefix-tracking Dijkstras; the tracked set of v_i is {v_0 .. v_{i-1}}
    // and both directions of one cut vertex share its prefix mask. The
    // serial/parallel mask dispatch is the shared RunPrefixMaskedSearches
    // helper.
    RunPrefixMaskedSearches(
        pool_, options_.tail_pruning, *cut, n,
        [&](size_t i, const std::vector<uint8_t>& mask) {
          (*fwd)[i] = DirectedDistAndPrune(sub, (*cut)[i],
                                           SearchDirection::kForward, mask);
          (*bwd)[i] = DirectedDistAndPrune(sub, (*cut)[i],
                                           SearchDirection::kBackward, mask);
        });

    const std::vector<size_t> out_base =
        options_.route_hints ? DirectedArcBases(sub, /*out=*/true)
                             : std::vector<size_t>{};
    const std::vector<size_t> in_base =
        options_.route_hints ? DirectedArcBases(sub, /*out=*/false)
                             : std::vector<size_t>{};
    for (Vertex v = 0; v < n; ++v) {
      size_t k_in = 0;
      size_t k_out = 0;
      for (size_t i = 0; i < m; ++i) {
        if ((*fwd)[i].via[v] == 0) k_in = i;
        if ((*bwd)[i].via[v] == 0) k_out = i;
      }
      auto& in_data = in_label_[to_global[v]];
      for (size_t i = 0; i <= k_in; ++i) {
        in_data.push_back(EncodeLabelDistance((*fwd)[i].dist[v]));
      }
      in_lens_[to_global[v]].push_back(static_cast<uint32_t>(k_in + 1));
      auto& out_data = out_label_[to_global[v]];
      for (size_t i = 0; i <= k_out; ++i) {
        out_data.push_back(EncodeLabelDistance((*bwd)[i].dist[v]));
      }
      out_lens_[to_global[v]].push_back(static_cast<uint32_t>(k_out + 1));
      if (options_.route_hints) {
        auto& in_hints = in_hint_[to_global[v]];
        for (size_t i = 0; i <= k_in; ++i) {
          in_hints.push_back(
              InWitness(sub, ann.in, in_base, v, (*fwd)[i].dist));
        }
        in_hint_lens_[to_global[v]].push_back(static_cast<uint32_t>(k_in + 1));
        auto& out_hints = out_hint_[to_global[v]];
        for (size_t i = 0; i <= k_out; ++i) {
          out_hints.push_back(
              OutWitness(sub, ann.out, out_base, v, (*bwd)[i].dist));
        }
        out_hint_lens_[to_global[v]].push_back(
            static_cast<uint32_t>(k_out + 1));
      }
    }

    HierarchyNode& node = hierarchy_.nodes_[node_idx];
    node.cut.reserve(m);
    for (Vertex v : *cut) {
      const Vertex global = to_global[v];
      node.cut.push_back(global);
      hierarchy_.node_of_vertex_[global] = static_cast<uint32_t>(node_idx);
      hierarchy_.vertex_code_[global] = code;
    }
  }

  /// Directed Algorithm 3: shortcut arcs that make the child sub-digraph
  /// distance-preserving in both directions.
  std::vector<DirectedArc> ComputeDirectedShortcuts(
      const Digraph& sub, const std::vector<Vertex>& cut,
      const std::vector<Vertex>& part,
      const std::vector<DistAndPruneResult>& fwd,
      const std::vector<DistAndPruneResult>& bwd) {
    const size_t n = sub.NumVertices();
    std::vector<uint8_t> in_cut(n, 0);
    for (Vertex v : cut) in_cut[v] = 1;

    std::vector<Vertex> border;
    for (Vertex v : part) {
      bool touches = false;
      for (const Arc& a : sub.OutArcs(v)) touches |= in_cut[a.to] != 0;
      for (const Arc& a : sub.InArcs(v)) touches |= in_cut[a.to] != 0;
      if (touches) border.push_back(v);
    }
    const size_t b = border.size();
    if (b < 2) return {};

    Subdigraph gp = InducedSubdigraph(sub, part);
    std::vector<Vertex> to_child(n, kInvalidVertex);
    for (size_t i = 0; i < part.size(); ++i) to_child[part[i]] = i;

    // d_GP(border_i -> border_j), forward Dijkstras inside G[P].
    std::vector<std::vector<Dist>> d_gp(b, std::vector<Dist>(b));
    for (size_t i = 0; i < b; ++i) {
      const auto dist = DirectedDistancesFrom(gp.graph, to_child[border[i]],
                                              SearchDirection::kForward);
      for (size_t j = 0; j < b; ++j) d_gp[i][j] = dist[to_child[border[j]]];
    }

    // True directed distances: best of in-partition and via-cut routes.
    std::vector<std::vector<Dist>> d_g = d_gp;
    for (size_t i = 0; i < b; ++i) {
      for (size_t j = 0; j < b; ++j) {
        if (i == j) continue;
        Dist through_cut = kInfDist;
        for (size_t c = 0; c < cut.size(); ++c) {
          const Dist to_c = bwd[c].dist[border[i]];    // d(border_i -> cut_c)
          const Dist from_c = fwd[c].dist[border[j]];  // d(cut_c -> border_j)
          if (to_c == kInfDist || from_c == kInfDist) continue;
          through_cut = std::min(through_cut, to_c + from_c);
        }
        d_g[i][j] = std::min(d_gp[i][j], through_cut);
      }
    }

    std::vector<DirectedArc> shortcuts;
    for (size_t i = 0; i < b; ++i) {
      for (size_t j = 0; j < b; ++j) {
        if (i == j || d_g[i][j] >= d_gp[i][j]) continue;
        bool redundant = false;
        for (size_t k = 0; k < b && !redundant; ++k) {
          if (k == i || k == j) continue;
          if (d_g[i][k] != kInfDist && d_g[k][j] != kInfDist &&
              d_g[i][k] + d_g[k][j] == d_g[i][j]) {
            redundant = true;
          }
        }
        if (!redundant) {
          HC2L_CHECK_LE(d_g[i][j], std::numeric_limits<Weight>::max());
          shortcuts.push_back(
              {border[i], border[j], static_cast<Weight>(d_g[i][j])});
        }
      }
    }
    return shortcuts;
  }

  const DirectedHc2lOptions options_;
  ThreadPool pool_;
  BalancedTreeHierarchy hierarchy_;
  std::vector<std::vector<uint32_t>> out_label_, in_label_;
  std::vector<std::vector<uint32_t>> out_lens_, in_lens_;
  // Route-hint accumulators, in lockstep with the label ones (empty unless
  // options_.route_hints).
  std::vector<std::vector<uint32_t>> out_hint_, in_hint_;
  std::vector<std::vector<uint32_t>> out_hint_lens_, in_hint_lens_;
};

DirectedHc2lIndex DirectedHc2lIndex::Build(const Digraph& g,
                                           const DirectedHc2lOptions& options) {
  HC2L_CHECK_GT(options.beta, 0.0);
  HC2L_CHECK_LE(options.beta, 0.5);
  DirectedHc2lIndex index;
  index.num_vertices_ = g.NumVertices();
  const Digraph* core = &g;
  if (options.contract_degree_one) {
    index.contraction_ = std::make_unique<DirectedDegreeOneContraction>(g);
    core = &index.contraction_->CoreGraph();
  }
  DirectedHc2lBuilder builder(*core, options);
  builder.Finish(&index);
  return index;
}

Dist DirectedHc2lIndex::Query(Vertex s, Vertex t) const {
  HC2L_CHECK_LT(s, NumVertices());
  HC2L_CHECK_LT(t, NumVertices());
  if (s == t) return 0;
  if (contraction_ == nullptr) return CoreQuery(s, t);

  const Vertex root_s = contraction_->RootCoreId(s);
  const Vertex root_t = contraction_->RootCoreId(t);
  if (root_s == root_t) return contraction_->SameTreeDistance(s, t);
  // Cross-tree: every s -> t path climbs s's chain to its root, crosses the
  // core, and descends t's chain — a one-way pendant broken in the needed
  // direction makes the whole answer unreachable.
  const Dist up = contraction_->DistToRoot(s);
  const Dist down = contraction_->DistFromRoot(t);
  if (up == kInfDist || down == kInfDist) return kInfDist;
  const Dist core = CoreQuery(root_s, root_t);
  return AddDist(AddDist(up, core), down);
}

Dist DirectedHc2lIndex::CoreQuery(Vertex s, Vertex t) const {
  if (s == t) return 0;
  const uint32_t level = hierarchy_.LcaLevel(s, t);
  const uint32_t s_idx = out_labels_.base[s] + level;
  const uint32_t t_idx = in_labels_.base[t] + level;
  const uint32_t* a = out_labels_.arena.data() + out_labels_.level_start[s_idx];
  const uint32_t* b = in_labels_.arena.data() + in_labels_.level_start[t_idx];
  const uint32_t len = std::min(out_labels_.level_len[s_idx],
                                in_labels_.level_len[t_idx]);
  simd::PrefetchArray(a, len * sizeof(uint32_t));
  simd::PrefetchArray(b, len * sizeof(uint32_t));
  const uint32_t best = simd::MinPlusPadded(a, b, len);
  return best >= kUnreachableLabel ? kInfDist : best;
}

DirectedHc2lIndex::ResolvedTargets DirectedHc2lIndex::ResolveTargets(
    std::span<const Vertex> targets) const {
  ResolvedTargets rt;
  ResolveTargetsInto(targets, &rt);
  return rt;
}

void DirectedHc2lIndex::ResolveTargetsInto(std::span<const Vertex> targets,
                                           ResolvedTargets* rt) const {
  const size_t n = targets.size();
  rt->original.assign(targets.begin(), targets.end());
  rt->core.resize(n);
  rt->detour.resize(n);
  rt->code.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Vertex t = targets[i];
    HC2L_CHECK_LT(t, NumVertices());
    Vertex root = t;
    Dist detour = 0;
    if (contraction_ != nullptr) {
      root = contraction_->RootCoreId(t);
      detour = contraction_->DistFromRoot(t);
    }
    rt->core[i] = root;
    rt->detour[i] = detour;
    rt->code[i] = hierarchy_.CodeOf(root);
  }
}

void DirectedHc2lIndex::BatchQueryResolved(Vertex source,
                                           const ResolvedTargets& rt,
                                           size_t begin, size_t end,
                                           Dist* out) const {
  HC2L_CHECK_LT(source, NumVertices());
  HC2L_CHECK_LE(begin, end);
  HC2L_CHECK_LE(end, rt.size());
  if (begin == end) return;

  // Source side hoisted for the batch: contraction root, upward detour,
  // tree code and out-array base. The shared pass 1 answers the trivial
  // cases inline and collects the rest; the shared level sweep min-reduces
  // the source's out-arrays against the targets' in-arrays. Working memory
  // is the calling thread's reusable scratch.
  Vertex root_s = source;
  Dist source_offset = 0;
  if (contraction_ != nullptr) {
    root_s = contraction_->RootCoreId(source);
    source_offset = contraction_->DistToRoot(source);
  }
  const TreeCode s_code = hierarchy_.CodeOf(root_s);
  const uint32_t s_base = out_labels_.base[root_s];
  QueryScratch& scratch = TlsQueryScratch();
  CollectPendingTargets(
      rt, begin, end, source, root_s, source_offset, s_code,
      contraction_ != nullptr,
      [&](Vertex t) { return contraction_->SameTreeDistance(source, t); },
      &scratch, out);
  SweepPendingByLevel(out_labels_, in_labels_, s_base, height_, &scratch, out);
}

std::vector<Dist> DirectedHc2lIndex::BatchQuery(
    Vertex source, std::span<const Vertex> targets) const {
  std::vector<Dist> out(targets.size(), kInfDist);
  BatchQueryInto(source, targets, out.data());
  return out;
}

void DirectedHc2lIndex::BatchQueryInto(Vertex source,
                                       std::span<const Vertex> targets,
                                       Dist* out) const {
  if (targets.empty()) return;
  // Unlike the undirected index there is no fused single-call variant:
  // directed resolution is a handful of array reads per target, so
  // delegating through a thread-local ResolvedTargets costs next to nothing
  // and keeps the path allocation-free once warm.
  static thread_local ResolvedTargets rt;
  ResolveTargetsInto(targets, &rt);
  BatchQueryResolved(source, rt, 0, rt.size(), out);
}

std::vector<std::vector<Dist>> DirectedHc2lIndex::DistanceMatrix(
    std::span<const Vertex> sources, std::span<const Vertex> targets) const {
  // Same tiling rationale as the undirected index: one resolution per
  // matrix, tiles of target in-arrays kept hot across sources.
  std::vector<std::vector<Dist>> matrix(
      sources.size(), std::vector<Dist>(targets.size(), kInfDist));
  if (sources.empty() || targets.empty()) return matrix;
  TiledDistanceMatrix(*this, ResolveTargets(targets), sources, &matrix);
  return matrix;
}

std::vector<std::pair<Dist, Vertex>> DirectedHc2lIndex::KNearest(
    Vertex source, std::span<const Vertex> candidates, size_t k) const {
  const std::vector<Dist> dists = BatchQuery(source, candidates);
  return SelectKNearest(dists, candidates, k);
}

// --- Route unpacking, the directed twin of Hc2lIndex::CoreRoute: the
// argmin hub of the LCA level pins a shortest s -> t path through one cut
// vertex; out-hints advance the source end forward, in-hints rewind the
// target end backward, and every emitted hop is a real core arc in its
// travel direction.

Status DirectedHc2lIndex::CoreRoute(Vertex cs, Vertex ct,
                                    std::vector<Vertex>* out) const {
  out->clear();
  const size_t core_n = out_labels_.base.size() - 1;
  std::vector<Vertex> back;  // suffix toward ct, collected in reverse
  Vertex s = cs;
  Vertex t = ct;
  out->push_back(s);
  size_t steps = 0;
  while (s != t) {
    if (++steps > core_n + 1) {
      return Status::Internal(
          "route unpacking exceeded the path-length bound (inconsistent "
          "hint store)");
    }
    const uint32_t level = hierarchy_.LcaLevel(s, t);
    const uint32_t s_idx = out_labels_.base[s] + level;
    const uint32_t t_idx = in_labels_.base[t] + level;
    const uint32_t* ds =
        out_labels_.arena.data() + out_labels_.level_start[s_idx];
    const uint32_t* dt =
        in_labels_.arena.data() + in_labels_.level_start[t_idx];
    const uint32_t len = std::min(out_labels_.level_len[s_idx],
                                  in_labels_.level_len[t_idx]);
    uint64_t best = UINT64_MAX;
    uint32_t best_i = UINT32_MAX;
    for (uint32_t i = 0; i < len; ++i) {
      if (ds[i] == kUnreachableLabel || dt[i] == kUnreachableLabel) continue;
      const uint64_t sum = uint64_t{ds[i]} + dt[i];
      if (sum < best) {
        best = sum;
        best_i = i;
      }
    }
    if (best_i == UINT32_MAX) {
      return Status::Internal(
          "route unpacking found no common hub for a reachable pair");
    }
    if (ds[best_i] > 0) {
      const Vertex hint =
          out_hints_.arena.data()[out_hints_.level_start[s_idx] + best_i];
      if (hint >= core_n) {
        return Status::Internal("route hint out of range");
      }
      s = hint;
      out->push_back(s);
    } else {
      // s *is* the hub (weights are positive); rewind the target end.
      const Vertex hint =
          in_hints_.arena.data()[in_hints_.level_start[t_idx] + best_i];
      if (hint >= core_n) {
        return Status::Internal("route hint out of range");
      }
      back.push_back(t);
      t = hint;
    }
  }
  out->insert(out->end(), back.rbegin(), back.rend());
  return Status::Ok();
}

Status DirectedHc2lIndex::ExpandRoute(Vertex s, Vertex t, Dist weight,
                                      const std::vector<Vertex>& core_path,
                                      RoutePath* out) const {
  out->vertices.clear();
  out->weight = weight;
  if (core_path.empty()) {
    return Status::Internal("empty core path for a reachable pair");
  }
  if (contraction_ == nullptr) {
    out->vertices = core_path;
    return Status::Ok();
  }
  const DirectedDegreeOneContraction& c = *contraction_;
  for (Vertex v = s; c.depth_[v] > 0; v = c.parent_[v]) {
    out->vertices.push_back(v);
  }
  for (const Vertex cv : core_path) {
    out->vertices.push_back(c.to_original_[cv]);
  }
  std::vector<Vertex> tail;
  for (Vertex v = t; c.depth_[v] > 0; v = c.parent_[v]) {
    tail.push_back(v);
  }
  out->vertices.insert(out->vertices.end(), tail.rbegin(), tail.rend());
  return Status::Ok();
}

Status DirectedHc2lIndex::Route(Vertex s, Vertex t, RoutePath* out) const {
  HC2L_CHECK_LT(s, NumVertices());
  HC2L_CHECK_LT(t, NumVertices());
  out->vertices.clear();
  out->weight = kInfDist;
  if (s == t) {
    out->vertices.push_back(s);
    out->weight = 0;
    return Status::Ok();
  }
  if (!HasRouteHints()) {
    return Status::FailedPrecondition(
        "index carries no route hints (built with route_hints = false, or "
        "loaded from a distance-only HC2D0001/HC2D0002 file); routes need a "
        "graph-backed fallback unpacker");
  }
  if (contraction_ != nullptr) {
    const Vertex root_s = contraction_->RootCoreId(s);
    const Vertex root_t = contraction_->RootCoreId(t);
    if (root_s == root_t) {
      // Same pendant tree: the only simple path climbs to the in-tree LCA;
      // a one-way chain broken in the needed direction means unreachable.
      const DirectedDegreeOneContraction& c = *contraction_;
      const Dist w = c.SameTreeDistance(s, t);
      if (w == kInfDist) return Status::Ok();
      out->weight = w;
      std::vector<Vertex> down;
      Vertex a = s;
      Vertex b = t;
      while (c.depth_[a] > c.depth_[b]) {
        out->vertices.push_back(a);
        a = c.parent_[a];
      }
      while (c.depth_[b] > c.depth_[a]) {
        down.push_back(b);
        b = c.parent_[b];
      }
      while (a != b) {
        out->vertices.push_back(a);
        a = c.parent_[a];
        down.push_back(b);
        b = c.parent_[b];
      }
      out->vertices.push_back(a);
      out->vertices.insert(out->vertices.end(), down.rbegin(), down.rend());
      return Status::Ok();
    }
    const Dist up = contraction_->DistToRoot(s);
    const Dist down = contraction_->DistFromRoot(t);
    if (up == kInfDist || down == kInfDist) return Status::Ok();
    const Dist core_d = CoreQuery(root_s, root_t);
    if (core_d == kInfDist) return Status::Ok();
    const Dist total = AddDist(AddDist(up, core_d), down);
    std::vector<Vertex> core_path;
    if (Status st = CoreRoute(root_s, root_t, &core_path); !st.ok()) {
      return st;
    }
    return ExpandRoute(s, t, total, core_path, out);
  }
  const Dist d = CoreQuery(s, t);
  if (d == kInfDist) return Status::Ok();
  std::vector<Vertex> core_path;
  if (Status st = CoreRoute(s, t, &core_path); !st.ok()) return st;
  return ExpandRoute(s, t, d, core_path, out);
}

Status DirectedHc2lIndex::Routes(Vertex s, Vertex t, size_t k,
                                 std::vector<RoutePath>* out) const {
  out->clear();
  if (k == 0) return Status::Ok();
  RoutePath first;
  if (Status st = Route(s, t, &first); !st.ok()) return st;
  if (first.vertices.empty()) return Status::Ok();  // unreachable pair
  out->push_back(std::move(first));
  if (out->size() >= k || s == t) return Status::Ok();

  Vertex cs = s;
  Vertex ct = t;
  Dist offset = 0;
  if (contraction_ != nullptr) {
    cs = contraction_->RootCoreId(s);
    ct = contraction_->RootCoreId(t);
    // One pendant tree admits exactly one simple path.
    if (cs == ct) return Status::Ok();
    offset = AddDist(contraction_->DistToRoot(s),
                     contraction_->DistFromRoot(t));
  }

  const uint32_t level = hierarchy_.LcaLevel(cs, ct);
  const uint32_t s_idx = out_labels_.base[cs] + level;
  const uint32_t t_idx = in_labels_.base[ct] + level;
  const uint32_t* ds =
      out_labels_.arena.data() + out_labels_.level_start[s_idx];
  const uint32_t* dt = in_labels_.arena.data() + in_labels_.level_start[t_idx];
  int32_t node = static_cast<int32_t>(hierarchy_.NodeOf(cs));
  while (TreeCodeDepth(hierarchy_.Node(node).code) > level) {
    node = hierarchy_.Node(node).parent;
    if (node < 0) {
      return Status::Internal("LCA climb fell off the hierarchy root");
    }
  }
  const std::vector<Vertex>& cut = hierarchy_.Node(node).cut;
  uint32_t len =
      std::min(out_labels_.level_len[s_idx], in_labels_.level_len[t_idx]);
  len = std::min(len, static_cast<uint32_t>(cut.size()));
  std::vector<std::pair<uint64_t, uint32_t>> candidates;
  for (uint32_t i = 0; i < len; ++i) {
    if (ds[i] == kUnreachableLabel || dt[i] == kUnreachableLabel) continue;
    candidates.emplace_back(uint64_t{ds[i]} + dt[i], i);
  }
  std::sort(candidates.begin(), candidates.end());

  std::unordered_set<Vertex> used((*out)[0].vertices.begin(),
                                  (*out)[0].vertices.end());
  for (const auto& [sum, i] : candidates) {
    if (out->size() >= k) break;
    const Vertex hub = cut[i];
    const Vertex hub_orig =
        contraction_ != nullptr ? contraction_->OriginalId(hub) : hub;
    if (used.count(hub_orig) != 0) continue;
    std::vector<Vertex> core_path;
    std::vector<Vertex> second;
    if (Status st = CoreRoute(cs, hub, &core_path); !st.ok()) return st;
    if (Status st = CoreRoute(hub, ct, &second); !st.ok()) return st;
    core_path.insert(core_path.end(), second.begin() + 1, second.end());
    std::unordered_set<Vertex> on_path;
    bool simple = true;
    for (const Vertex v : core_path) {
      if (!on_path.insert(v).second) {
        simple = false;
        break;
      }
    }
    if (!simple) continue;
    RoutePath alt;
    if (Status st = ExpandRoute(s, t, AddDist(offset, sum), core_path, &alt);
        !st.ok()) {
      return st;
    }
    bool dup = false;
    for (const RoutePath& r : *out) {
      if (r.vertices == alt.vertices) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    for (const Vertex v : alt.vertices) used.insert(v);
    out->push_back(std::move(alt));
  }
  return Status::Ok();
}

// Directed format 1 ("HC2D0001", src/core/index_format.h): vertex count,
// height, hierarchy, out- and in-label stores. Format 2 ("HC2D0002")
// prepends the degree-one contraction mapping (sizes first, then the
// per-vertex arrays) before the hierarchy. Format 3 ("HC2D0003") replaces
// the magic-encoded contraction split with an explicit uint8 marker, keeps
// the same body, and appends the out- and in-hint stores. Format 4
// ("HC2D0004", the written format for hint-carrying indexes) lifts the
// four arenas out of the V3 body into their own 64-byte-aligned sections
// so OpenMode::kMmap can use them in place. Hint-less files keep the V1/V2
// layouts so they stay readable by older builds; Load accepts all four.
// Byte-level spec: docs/format.md.
Status DirectedHc2lIndex::Save(const std::string& path) const {
  io::FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  // The body between the contraction marker and the label data, shared by
  // every format. core_id_ / to_original_ are derivable (a vertex is in the
  // core iff its depth is 0, and its core id is then its root id), so the
  // format does not carry them; Load reconstructs both.
  const auto write_body = [&](std::FILE* out) {
    if (contraction_ == nullptr) {
      const uint64_t num_vertices = NumVertices();
      return io::WriteValue(out, num_vertices) && io::WriteValue(out, height_);
    }
    const DirectedDegreeOneContraction& c = *contraction_;
    const uint64_t num_vertices = num_vertices_;
    const uint64_t num_contracted = c.num_contracted_;
    return io::WriteValue(out, num_vertices) &&
           io::WriteValue(out, num_contracted) &&
           io::WriteValue(out, height_) &&
           io::WriteVector(out, c.root_core_id_) &&
           io::WriteVector(out, c.parent_) && io::WriteVector(out, c.depth_) &&
           io::WriteVector(out, c.up_weight_) &&
           io::WriteVector(out, c.down_weight_) &&
           io::WriteVector(out, c.up_dist_) &&
           io::WriteVector(out, c.down_dist_);
  };

  bool ok;
  if (!HasRouteHints()) {
    const uint64_t magic = contraction_ == nullptr ? kDirectedIndexMagic
                                                   : kDirectedIndexMagicV2;
    ok = io::WriteValue(f.get(), magic) && write_body(f.get()) &&
         hierarchy_.WriteTo(f.get()) &&
         io::WriteLabelStore(f.get(), out_labels_) &&
         io::WriteLabelStore(f.get(), in_labels_);
  } else {
    const uint8_t has_contraction = contraction_ != nullptr ? 1 : 0;
    io::SectionWriter w(f.get());
    const auto write_arena = [&](size_t index, uint64_t id,
                                 const LabelArena& arena) {
      return w.Begin(index, id) &&
             (arena.size() == 0 ||
              io::WritePod(f.get(), arena.data(), arena.SizeBytes())) &&
             w.End(index);
    };
    // Each hint store mirrors its label store's shape (a class invariant
    // the loader rebuilds by sharing), so one counts record and one offsets
    // section per direction cover both stores of that direction.
    HC2L_CHECK_EQ(out_hints_.arena.size(), out_labels_.arena.size());
    HC2L_CHECK_EQ(in_hints_.arena.size(), in_labels_.arena.size());
    ok = w.Start(kDirectedIndexMagicV4, 7) && w.Begin(0, io::kSectionMeta) &&
         io::WriteValue(f.get(), has_contraction) && write_body(f.get()) &&
         hierarchy_.WriteTo(f.get()) &&
         io::WriteLabelStoreCounts(f.get(), out_labels_) &&
         io::WriteLabelStoreCounts(f.get(), in_labels_) && w.End(0) &&
         w.Begin(1, io::kSectionLabelOffsets) &&
         io::WriteLabelStoreOffsets(f.get(), out_labels_) && w.End(1) &&
         w.Begin(2, io::kSectionInLabelOffsets) &&
         io::WriteLabelStoreOffsets(f.get(), in_labels_) && w.End(2) &&
         write_arena(3, io::kSectionLabelArena, out_labels_.arena) &&
         write_arena(4, io::kSectionInLabelArena, in_labels_.arena) &&
         write_arena(5, io::kSectionHintArena, out_hints_.arena) &&
         write_arena(6, io::kSectionInHintArena, in_hints_.arena) &&
         w.Finish();
  }
  if (!ok) {
    return Status::Unavailable("write error on " + path);
  }
  return Status::Ok();
}

Result<DirectedHc2lIndex> DirectedHc2lIndex::Load(const std::string& path) {
  return Load(path, /*use_mmap=*/false);
}

Result<DirectedHc2lIndex> DirectedHc2lIndex::Load(const std::string& path,
                                                  bool use_mmap) {
  io::FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  io::Reader reader(f.get());
  io::Reader* r = &reader;
  const uint64_t file_size = reader.remaining();
  uint64_t magic = 0;
  if (!io::ReadValue(r, &magic) ||
      (magic != kDirectedIndexMagic && magic != kDirectedIndexMagicV2 &&
       magic != kDirectedIndexMagicV3 && magic != kDirectedIndexMagicV4)) {
    return Status::InvalidArgument("not a directed HC2L index file: " + path);
  }
  const bool has_hints =
      magic == kDirectedIndexMagicV3 || magic == kDirectedIndexMagicV4;
  DirectedHc2lIndex index;
  uint64_t num_vertices = 0;
  uint64_t num_contracted = 0;
  uint32_t stored_height = 0;
  bool contracted_body = magic == kDirectedIndexMagicV2;

  // V3/V4 carry an explicit contraction marker instead of splitting by
  // magic; then the body shared by every format.
  const auto read_marker = [&](io::Reader* in) {
    uint8_t has_contraction = 0;
    const bool ok = io::ReadValue(in, &has_contraction) && has_contraction <= 1;
    contracted_body = has_contraction != 0;
    return ok;
  };
  const auto read_body = [&](io::Reader* in) {
    bool ok = io::ReadValue(in, &num_vertices);
    if (ok && contracted_body) {
      index.contraction_ = std::unique_ptr<DirectedDegreeOneContraction>(
          new DirectedDegreeOneContraction());
      DirectedDegreeOneContraction& c = *index.contraction_;
      ok = io::ReadValue(in, &num_contracted) &&
           io::ReadValue(in, &stored_height) &&
           io::ReadVector(in, &c.root_core_id_) &&
           io::ReadVector(in, &c.parent_) && io::ReadVector(in, &c.depth_) &&
           io::ReadVector(in, &c.up_weight_) &&
           io::ReadVector(in, &c.down_weight_) &&
           io::ReadVector(in, &c.up_dist_) &&
           io::ReadVector(in, &c.down_dist_);
      c.num_contracted_ = num_contracted;
    } else {
      ok = ok && io::ReadValue(in, &stored_height);
    }
    return ok;
  };

  // Each hint store must mirror its label store's shape exactly (Route
  // indexes both with the same offsets).
  const auto hints_match_labels = [&]() {
    return index.out_hints_.base == index.out_labels_.base &&
           index.out_hints_.level_start == index.out_labels_.level_start &&
           index.out_hints_.level_len == index.out_labels_.level_len &&
           index.in_hints_.base == index.in_labels_.base &&
           index.in_hints_.level_start == index.in_labels_.level_start &&
           index.in_hints_.level_len == index.in_labels_.level_len;
  };

  // Every true-length hint entry must be a core vertex id or the no-hint
  // sentinel. O(entries), so heap loads only — a mapped open must not touch
  // the arena pages; CoreRoute's per-step range checks re-validate every
  // hint the walk actually dereferences.
  const auto entries_in_range = [&](const LabelStore& hints) {
    const size_t core = hints.base.size() - 1;
    for (size_t v = 0; v < core; ++v) {
      for (uint32_t a = hints.base[v]; a < hints.base[v + 1]; ++a) {
        const uint32_t start = hints.level_start[a];
        const uint32_t len = hints.level_len[a];
        for (uint32_t j = 0; j < len; ++j) {
          const uint32_t e = hints.arena.data()[start + j];
          if (e != kInvalidVertex && e >= core) return false;
        }
      }
    }
    return true;
  };

  // Same query-path hardening as the undirected Load (see hc2l.cc): code
  // tables must cover every core vertex and both directions must hold at
  // least depth+1 arrays per vertex; the stores' own structure was validated
  // in ReadLabelStore / ReadLabelStoreMeta. With a contraction the
  // per-vertex mapping arrays must cover every original vertex and point
  // inside the core, so the query paths never index out of bounds. Files
  // from adversarial sources remain unsupported.
  const auto validate_structure = [&]() {
    if (index.out_labels_.base.empty()) return false;
    const size_t core = index.out_labels_.base.size() - 1;
    bool ok = index.in_labels_.base.size() == core + 1 &&
              index.hierarchy_.vertex_code_.size() == core &&
              index.hierarchy_.node_of_vertex_.size() == core;
    for (size_t v = 0; ok && v < core; ++v) {
      const uint32_t depth = TreeCodeDepth(index.hierarchy_.vertex_code_[v]);
      ok = index.out_labels_.base[v + 1] - index.out_labels_.base[v] >=
               depth + 1 &&
           index.in_labels_.base[v + 1] - index.in_labels_.base[v] >=
               depth + 1;
    }
    if (ok && index.contraction_ != nullptr) {
      DirectedDegreeOneContraction& c = *index.contraction_;
      const size_t n = num_vertices;
      ok = core + num_contracted == n && c.root_core_id_.size() == n &&
           c.parent_.size() == n && c.depth_.size() == n &&
           c.up_weight_.size() == n && c.down_weight_.size() == n &&
           c.up_dist_.size() == n && c.down_dist_.size() == n;
      for (size_t v = 0; ok && v < n; ++v) {
        ok = c.root_core_id_[v] < core && c.parent_[v] < n;
      }
      // Reconstruct the derived mappings; doing so doubles as the
      // consistency check that the depth-0 set maps one-to-one onto the
      // core.
      if (ok) {
        c.core_id_.assign(n, kInvalidVertex);
        c.to_original_.assign(core, kInvalidVertex);
        for (size_t v = 0; ok && v < n; ++v) {
          if (c.depth_[v] != 0) continue;
          const Vertex id = c.root_core_id_[v];
          ok = c.to_original_[id] == kInvalidVertex;
          c.to_original_[id] = static_cast<Vertex>(v);
          c.core_id_[v] = id;
        }
        for (size_t i = 0; ok && i < core; ++i) {
          ok = c.to_original_[i] != kInvalidVertex;
        }
      }
    } else if (ok) {
      ok = core == num_vertices;
    }
    return ok;
  };

  bool ok = true;
  if (magic == kDirectedIndexMagicV4) {
    // Same flow as the undirected V4 loader (hc2l.cc), doubled per
    // direction: parse the table, map the file when asked (the metadata
    // parse then runs straight off the mapping), attach the offset tables
    // and arenas by view (kMmap) or straight reads (kHeap). Each direction
    // stores one offsets section shared by its label and hint stores.
    std::vector<io::SectionEntry> sections;
    ok = io::ReadSectionTable(r, file_size, &sections);
    const io::SectionEntry* meta =
        ok ? io::FindSection(sections, io::kSectionMeta) : nullptr;
    const io::SectionEntry* offset_sections[2] = {nullptr, nullptr};
    const io::SectionEntry* arena_sections[4] = {nullptr, nullptr, nullptr,
                                                 nullptr};
    const uint64_t offset_ids[2] = {io::kSectionLabelOffsets,
                                    io::kSectionInLabelOffsets};
    const uint64_t arena_ids[4] = {io::kSectionLabelArena,
                                   io::kSectionInLabelArena,
                                   io::kSectionHintArena,
                                   io::kSectionInHintArena};
    // Per direction d: labels = stores[d], hints = stores[d + 2].
    LabelStore* stores[4] = {&index.out_labels_, &index.in_labels_,
                             &index.out_hints_, &index.in_hints_};
    io::LabelStoreCounts counts[2];
    if (ok) {
      ok = meta != nullptr;
      for (int i = 0; i < 2; ++i) {
        offset_sections[i] = io::FindSection(sections, offset_ids[i]);
        ok = ok && offset_sections[i] != nullptr;
      }
      for (int i = 0; i < 4; ++i) {
        arena_sections[i] = io::FindSection(sections, arena_ids[i]);
        ok = ok && arena_sections[i] != nullptr;
      }
    }
    if (ok && use_mmap) {
      // Mapping dereferences nothing by itself; every later access stays
      // inside section bounds the table validation pinned to the real file
      // size.
      index.mapping_ = MappedFile::Open(path);
      ok = index.mapping_ != nullptr && index.mapping_->size() == file_size;
    }
    if (ok) {
      const auto parse_meta = [&](io::Reader* mr) {
        return read_marker(mr) && read_body(mr) &&
               index.hierarchy_.ReadFrom(mr) &&
               io::ReadLabelStoreCounts(mr, &counts[0]) &&
               io::ReadLabelStoreCounts(mr, &counts[1]);
      };
      if (use_mmap) {
        io::Reader mr(index.mapping_->data() + meta->offset, meta->bytes);
        ok = parse_meta(&mr);
      } else {
        ok = std::fseek(f.get(), static_cast<long>(meta->offset), SEEK_SET) ==
             0;
        io::Reader mr(f.get());
        mr.LimitTo(meta->bytes);
        ok = ok && parse_meta(&mr);
      }
      for (int d = 0; ok && d < 2; ++d) {
        // The declared table and entry counts must exactly match the
        // offsets and arena sections' byte sizes (the divisions avoid
        // forged-count overflows), and each hint arena must mirror its
        // label arena.
        ok = io::OffsetsSectionMatches(*offset_sections[d], counts[d]) &&
             arena_sections[d]->bytes % sizeof(uint32_t) == 0 &&
             arena_sections[d]->bytes / sizeof(uint32_t) ==
                 counts[d].arena_entries &&
             arena_sections[d + 2]->bytes == arena_sections[d]->bytes;
      }
    }
    if (ok && use_mmap) {
      const uint8_t* base = index.mapping_->data();
      for (int d = 0; ok && d < 2; ++d) {
        io::AttachOffsetsView(base + offset_sections[d]->offset, counts[d],
                              stores[d], stores[d + 2]);
        for (const int i : {d, d + 2}) {
          stores[i]->arena.ResetView(
              reinterpret_cast<const uint32_t*>(base +
                                                arena_sections[i]->offset),
              counts[d].arena_entries);
          index.mapping_->AdviseRandom(arena_sections[i]->offset,
                                       arena_sections[i]->bytes);
        }
        ok = io::ValidateLabelShape(*stores[d], counts[d].arena_entries);
      }
      ok = ok && validate_structure();
    } else if (ok) {
      for (int d = 0; ok && d < 2; ++d) {
        ok = std::fseek(f.get(),
                        static_cast<long>(offset_sections[d]->offset),
                        SEEK_SET) == 0;
        if (!ok) break;
        io::Reader orr(f.get());
        orr.LimitTo(offset_sections[d]->bytes);
        ok = io::ReadLabelStoreOffsets(&orr, counts[d], stores[d],
                                       stores[d + 2]) &&
             io::ValidateLabelShape(*stores[d], counts[d].arena_entries);
      }
      ok = ok && validate_structure();
      for (int i = 0; ok && i < 4; ++i) {
        const uint64_t entries = counts[i % 2].arena_entries;
        ok = std::fseek(f.get(), static_cast<long>(arena_sections[i]->offset),
                        SEEK_SET) == 0;
        if (!ok) break;
        io::Reader ar(f.get());
        stores[i]->arena.Reset(entries);
        ok = entries == 0 ||
             ar.Read(stores[i]->arena.data(), entries * sizeof(uint32_t));
      }
      ok = ok && entries_in_range(index.out_hints_) &&
           entries_in_range(index.in_hints_);
    }
  } else {
    // Legacy inline formats; use_mmap is ignored (their arenas interleave
    // with the metadata stream).
    if (has_hints) {
      ok = read_marker(r);
    }
    ok = ok && read_body(r) && index.hierarchy_.ReadFrom(r) &&
         io::ReadLabelStore(r, &index.out_labels_) &&
         io::ReadLabelStore(r, &index.in_labels_);
    if (ok && has_hints) {
      ok = io::ReadLabelStore(r, &index.out_hints_) &&
           io::ReadLabelStore(r, &index.in_hints_) && hints_match_labels() &&
           entries_in_range(index.out_hints_) &&
           entries_in_range(index.in_hints_);
    }
    ok = ok && validate_structure();
  }
  if (!ok) {
    return Status::DataLoss("truncated or corrupt directed HC2L index file: " +
                            path);
  }
  index.num_vertices_ = num_vertices;
  // The stored height is informational; the level bucketing's bound is
  // recomputed so it always agrees with the validated codes.
  index.height_ = index.hierarchy_.LevelBound();
  return index;
}

size_t DirectedHc2lIndex::MappedBytes() const {
  size_t bytes = 0;
  for (const LabelStore* store :
       {&out_labels_, &in_labels_, &out_hints_, &in_hints_}) {
    if (!store->arena.owned()) bytes += store->arena.SizeBytes();
  }
  // A mapped open views the offset tables too; each hint store shares its
  // label store's tables (the same mapped bytes), so they count once per
  // direction.
  for (const LabelStore* store : {&out_labels_, &in_labels_}) {
    if (!store->base.owned()) bytes += store->MetadataBytes();
  }
  return bytes;
}

size_t DirectedHc2lIndex::ArenaResidentBytes() const {
  size_t bytes = 0;
  for (const LabelStore* store :
       {&out_labels_, &in_labels_, &out_hints_, &in_hints_}) {
    bytes += store->arena.SizeBytes();
  }
  // Heap loads hold separate (identical) hint offset tables; a mapped open
  // shares each label store's, which must then count once per direction.
  for (const LabelStore* store : {&out_labels_, &in_labels_}) {
    bytes += store->MetadataBytes();
  }
  for (const LabelStore* store : {&out_hints_, &in_hints_}) {
    if (store->base.owned()) bytes += store->MetadataBytes();
  }
  return bytes;
}

size_t DirectedHc2lIndex::NumEntries() const {
  const auto sum = [](const LabelStore& labels) {
    return std::accumulate(labels.level_len.begin(), labels.level_len.end(),
                           uint64_t{0});
  };
  return static_cast<size_t>(sum(out_labels_) + sum(in_labels_));
}

size_t DirectedHc2lIndex::LabelLogicalBytes() const {
  return NumEntries() * sizeof(uint32_t) + out_labels_.MetadataBytes() +
         in_labels_.MetadataBytes();
}

size_t DirectedHc2lIndex::LabelSizeBytes() const {
  return out_labels_.ResidentBytes() + in_labels_.ResidentBytes();
}

}  // namespace hc2l
