#ifndef HC2L_CORE_HC2L_H_
#define HC2L_CORE_HC2L_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/label_arena.h"
#include "common/mmap_file.h"
#include "core/query_common.h"
#include "graph/graph.h"
#include "hc2l/status.h"
#include "hierarchy/contraction.h"
#include "hierarchy/hierarchy.h"

namespace hc2l {

class ThreadPool;

/// Construction options for the HC2L index.
struct Hc2lOptions {
  /// Balance threshold beta in (0, 0.5]; the paper selects 0.2 (Section 5).
  double beta = 0.2;
  /// Recursion stops when a subgraph has at most this many vertices; the
  /// remaining set forms a leaf node and is labelled like a cut.
  uint32_t leaf_size = 8;
  /// Tail pruning (Definition 4.18). Disabling it yields the naive
  /// upper-bound labelling of Section 4.2.1 (full distance arrays): ~10-15%
  /// larger labels, ~20% faster construction.
  bool tail_pruning = true;
  /// Degree-one contraction (Section 4.2.2). Disabling indexes the full
  /// graph (ablation).
  bool contract_degree_one = true;
  /// Record route hints (the first core-graph hop toward every hub) next to
  /// the distance labels, enabling label-based path unpacking (Route).
  /// Disabling builds a distance-only index that serializes in the legacy
  /// HC2L0002 format; routes then require a graph-backed fallback unpacker.
  bool route_hints = true;
  /// Number of construction threads; >1 gives the paper's HC2L_p variant.
  /// Query processing is always single-threaded per query.
  uint32_t num_threads = 1;
};

/// Construction and size statistics of a built index.
struct Hc2lStats {
  uint64_t num_vertices = 0;        // original graph
  uint64_t num_core_vertices = 0;   // after degree-one contraction
  uint64_t num_contracted = 0;
  uint32_t tree_height = 0;
  uint64_t num_tree_nodes = 0;
  uint64_t max_cut_size = 0;
  double avg_cut_size = 0.0;
  uint64_t num_shortcuts = 0;
  uint64_t label_entries = 0;  // stored distance values
  uint64_t label_bytes = 0;    // distance data + per-level offsets
  uint64_t lca_bytes = 0;      // packed per-vertex tree codes
  double build_seconds = 0.0;
};

/// Outcome metrics of the last RebuildLabels / RepairLabels call. Not
/// serialized; reset by Load(). The recomputed/total entry ratio is the
/// CPU-independent scoped-repair quality metric recorded in
/// BENCH_query.json's `update_latency` section.
struct RepairStats {
  uint64_t recomputed_entries = 0;  // label entries recomputed by the walk
  uint64_t reused_entries = 0;      // entries spliced verbatim from the old
                                    // store (clean subtrees)
  uint64_t dirty_nodes = 0;         // hierarchy nodes re-labelled
  uint64_t clean_subtrees = 0;      // subtrees cut off at the clean frontier
  bool full_rebuild = false;        // the walk could not be scoped (cold
                                    // cache or tail-pruning flag change)
  double seconds = 0.0;
};

/// Hierarchical Cut 2-Hop Labelling index (the paper's primary contribution).
///
/// Usage:
///   Graph g = ...;
///   Hc2lIndex index = Hc2lIndex::Build(g, {.beta = 0.2});
///   Dist d = index.Query(s, t);   // == d_G(s, t), kInfDist if disconnected
///
/// Build() constructs the balanced tree hierarchy (recursive balanced vertex
/// cuts + distance-preserving shortcuts), then the tail-pruned labelling.
/// Query() finds the level of LCA(s, t) with one XOR + clz over packed tree
/// codes and min-reduces the two aligned distance arrays of that level
/// (Eq. 7). With options.num_threads > 1 this is the paper's HC2L_p; the
/// resulting index is bit-identical to the single-threaded one.
class Hc2lIndex {
 public:
  /// Sentinel stored in labels for "unreachable from this hub".
  static constexpr uint32_t kUnreachableLabel = UINT32_MAX;

  /// Builds an index over g.
  static Hc2lIndex Build(const Graph& g, const Hc2lOptions& options = {});

  Hc2lIndex(Hc2lIndex&&) = default;
  Hc2lIndex& operator=(Hc2lIndex&&) = default;

  /// Exact shortest-path distance between s and t (kInfDist if
  /// disconnected).
  Dist Query(Vertex s, Vertex t) const;

  /// Query() that additionally reports how many hub entries were scanned —
  /// the quantity averaged in Table 3's AHS column.
  Dist QueryCountingHubs(Vertex s, Vertex t, uint64_t* hubs_scanned) const;

  /// One-to-many: distances from `source` to every target, in order.
  /// The bulk interface for the paper's motivating workloads (Section 1:
  /// matching cars to customers, k-nearest POIs).
  std::vector<Dist> BatchQuery(Vertex source,
                               std::span<const Vertex> targets) const;

  /// Span-writing BatchQuery: writes out[i] = d(source, targets[i]) for every
  /// i (every slot is written; no pre-fill needed). Working memory comes from
  /// the calling thread's QueryScratch, so steady-state calls do not allocate
  /// — the primitive under the facade's zero-copy request path.
  void BatchQueryInto(Vertex source, std::span<const Vertex> targets,
                      Dist* out) const;

  /// Many-to-many distance matrix: result[i][j] = d(sources[i], targets[j]).
  /// Target-side resolution is hoisted once for the whole matrix and targets
  /// are processed in tiles so their label arrays stay L2-resident across
  /// sources.
  std::vector<std::vector<Dist>> DistanceMatrix(
      std::span<const Vertex> sources, std::span<const Vertex> targets) const;

  /// The k candidates nearest to `source` (ties broken deterministically by
  /// candidate order), as (distance, candidate) pairs sorted ascending;
  /// unreachable candidates are excluded, so fewer than k entries may return.
  std::vector<std::pair<Dist, Vertex>> KNearest(
      Vertex source, std::span<const Vertex> candidates, size_t k) const;

  /// Target-side state hoisted out of the per-source loop: contraction root,
  /// pendant-tree detour and packed tree code, resolved once and reused by
  /// every source. Produced by ResolveTargets(); consumed by
  /// BatchQueryResolved(). The struct itself (ResolvedTargetSet,
  /// src/core/query_common.h) is shared with the directed index so the query
  /// engine and facade template over one shape.
  using ResolvedTargets = ResolvedTargetSet;

  /// Resolves a target list for repeated use against many sources.
  ResolvedTargets ResolveTargets(std::span<const Vertex> targets) const;

  /// ResolveTargets into a caller-owned (typically reused) instance: vectors
  /// are resized in place, so a warm `rt` resolves without allocating.
  void ResolveTargetsInto(std::span<const Vertex> targets,
                          ResolvedTargets* rt) const;

  /// Computes out[i] = d(source, targets.original[i]) for i in [begin, end).
  /// `out` points at the full row (indexed by target position, not
  /// shard-relative), so disjoint ranges of one row may be filled from
  /// different threads. The building block DistanceMatrix and the parallel
  /// query engine tile their work with.
  void BatchQueryResolved(Vertex source, const ResolvedTargets& targets,
                          size_t begin, size_t end, Dist* out) const;

  /// Number of vertices of the indexed graph.
  size_t NumVertices() const { return stats_.num_vertices; }

  /// True when the index carries route hints (built with route_hints, or
  /// loaded from an HC2L0003 file) and can unpack paths without a graph.
  bool HasRouteHints() const { return !hints_.base.empty(); }

  /// Reconstructs one shortest path s -> t from the labels: out->vertices
  /// holds the full original-id sequence (s first, t last; the single
  /// vertex for s == t; empty when unreachable) and out->weight the path
  /// weight, which always equals Query(s, t). Vertex ids must be in range
  /// (the facade validates). Errors: kFailedPrecondition (no route hints —
  /// use a graph-backed fallback), kInternal (hint invariants broken, e.g.
  /// a corrupt hint store).
  Status Route(Vertex s, Vertex t, RoutePath* out) const;

  /// Up to k alternative routes s -> t, sorted ascending by weight; the
  /// first is a shortest path (Route's answer). Alternatives are built by
  /// routing via the other separator hubs of the s/t cut level and deduped
  /// by vertex sequence (plateaux-style: a via-hub already on a selected
  /// route adds nothing new). Fewer than k may return; an unreachable pair
  /// returns an empty list. k == 0 is an empty list. Error contract as
  /// Route.
  Status Routes(Vertex s, Vertex t, size_t k,
                std::vector<RoutePath>* out) const;

  /// Construction/size statistics.
  const Hc2lStats& Stats() const { return stats_; }

  /// The balanced tree hierarchy (over the core graph).
  const BalancedTreeHierarchy& Hierarchy() const { return hierarchy_; }

  /// Resident label storage in bytes: the cache-aligned arena (including its
  /// sentinel padding) plus offset tables; excludes LCA codes. The logical
  /// (unpadded) size is Stats().label_bytes.
  size_t LabelSizeBytes() const;

  /// Bytes needed for O(1) LCA lookups (Table 3's "LCA Storage").
  size_t LcaStorageBytes() const { return hierarchy_.LcaStorageBytes(); }

  /// Dynamic weight updates (Section 5.4): refreshes every distance value —
  /// contraction offsets, shortcuts and label arrays — for a graph with the
  /// SAME topology but changed edge weights, reusing the stored balanced
  /// tree hierarchy (whose construction "does not depend on edge weights,
  /// except for shortcuts"). This skips all partitioning and minimum-cut
  /// work, so it is substantially faster than Build(); the cut *ordering* is
  /// kept, which stays correct (tail pruning is sound for any fixed order)
  /// though cut quality may drift if weights change drastically. With
  /// num_threads > 1 (0 = all hardware threads) the per-node label
  /// recomputation is parallelized across each hierarchy level over the
  /// shared pool; the rebuilt index is bit-identical to the serial one.
  /// Errors (kInvalidArgument: vertex count or pendant-tree structure
  /// differs from the indexed graph) are detected before any state is
  /// mutated, so the index stays valid on failure — except kOutOfRange
  /// (updated weights push some label distance past the 2^31 encoding
  /// limit), which is detected mid-walk and leaves the index in an
  /// unspecified state; discard it (Router::UpdateWeights repairs a
  /// disposable clone, so the serving index is never at risk). The walk
  /// runs on a lazily built member pool that is reused across calls (and
  /// shared with clones), so a live update loop spawns no per-call threads.
  Status RebuildLabels(const Graph& g, bool tail_pruning = true,
                       uint32_t num_threads = 1);

  /// Scoped label repair (Section 5.4 under live traffic): g is the updated
  /// graph (same topology) and `deltas` names exactly the edges whose
  /// weights changed. Walks the stored hierarchy top-down like
  /// RebuildLabels, but cuts the walk off at every child subtree whose
  /// recomputed inputs (induced subgraph + shortcuts, compared against the
  /// cache retained from the previous walk) are unchanged: such subtrees
  /// keep their label arrays verbatim (spliced from the current store), so
  /// only the subtrees whose separators cover a changed edge are
  /// recomputed. The result is bit-identical to a full RebuildLabels(g) —
  /// pinned by the differential test in tests/dynamic_test.cc. Deltas that
  /// touch only contracted pendant edges skip the core walk entirely (the
  /// contraction offsets are refreshed wholesale either way).
  ///
  /// The repair cache is populated by the first RebuildLabels/RepairLabels
  /// walk after Build() or Load(); until then (or after a tail_pruning flag
  /// change) this falls back to a full rebuild — steady-state updates are
  /// scoped. Error contract matches RebuildLabels; LastRepairStats()
  /// reports what the call recomputed vs reused.
  Status RepairLabels(const Graph& g, std::span<const EdgeDelta> deltas,
                      bool tail_pruning = true, uint32_t num_threads = 1);

  /// Metrics of the last RebuildLabels / RepairLabels call.
  const RepairStats& LastRepairStats() const { return repair_stats_; }

  /// Deep copy: labels, hierarchy, contraction and the repair cache are
  /// copied; the lazily built rebuild pool is shared (it holds no state
  /// between calls). The copy-on-repair primitive under
  /// Router::UpdateWeights — repair the clone, keep serving the original.
  /// Rebuild/repair calls on clones sharing one pool must not overlap.
  Hc2lIndex Clone() const;

  /// True iff every queryable structure (stats, contraction, hierarchy,
  /// labels — everything except timings and the repair cache) is
  /// bit-identical to other's. The differential-test oracle for
  /// RepairLabels vs RebuildLabels.
  bool IdenticalTo(const Hc2lIndex& other) const;

  /// Serializes the index (labels, hierarchy, contraction) to a file.
  Status Save(const std::string& path) const;

  /// Loads an index previously written by Save(). Accepts every undirected
  /// format: the legacy distance-only HC2L0002, the hint-carrying HC2L0003
  /// and the sectioned HC2L0004 (the hint-carrying formats restore route
  /// hints, so Route works without a graph). Errors: kNotFound (cannot
  /// open), kInvalidArgument (not an undirected index), kDataLoss
  /// (truncated or corrupt).
  static Result<Hc2lIndex> Load(const std::string& path);

  /// Load with an open mode. use_mmap maps an HC2L0004 file's label arenas
  /// in place (O(1) open: only the metadata section is parsed; the arenas
  /// are views into the page cache, advised MADV_RANDOM). Legacy formats
  /// ignore the flag and load via the heap path. A mapped index answers
  /// every query identically; mutation (RebuildLabels/RepairLabels)
  /// materializes owned arenas on first use, and Clone() always produces a
  /// fully owned copy.
  static Result<Hc2lIndex> Load(const std::string& path, bool use_mmap);

  /// Label bytes (arenas + offset tables) served straight from the file
  /// mapping (0 for a heap load). The IndexInfo mapped_bytes/heap_bytes
  /// split.
  size_t MappedBytes() const;

  /// Total label + hint arena and offset-table bytes regardless of
  /// backing; ArenaResidentBytes() - MappedBytes() is what the label
  /// structures hold on the heap.
  size_t ArenaResidentBytes() const;

 private:
  friend class Hc2lBuilder;
  Hc2lIndex() = default;

  /// Query over core-graph ids (labels + hierarchy only).
  Dist CoreQuery(Vertex s, Vertex t, uint64_t* hubs_scanned) const;

  /// Hint-store walk over core ids: writes the full core-id shortest path
  /// cs..ct (inclusive; cleared first) into *out. Requires HasRouteHints().
  /// kInternal when the hints are inconsistent with the labels.
  Status CoreRoute(Vertex cs, Vertex ct, std::vector<Vertex>* out) const;

  /// Maps a core-id path back to original ids and splices the pendant-tree
  /// chains of s and/or t around it (`weight` is the known total).
  Status ExpandRoute(Vertex s, Vertex t, Dist weight,
                     const std::vector<Vertex>& core_path,
                     RoutePath* out) const;

  /// Per-hierarchy-node inputs of the last relabel walk: the node's induced
  /// subgraph (local ids), the local->core-global id map, the per-arc route
  /// annotations (first real core hop each subgraph arc stands for; empty
  /// when the index is hint-less), and how many shortcuts its creation
  /// added. A repair walk re-derives a child's inputs at its (dirty) parent
  /// and compares them against this cache — equality proves the whole
  /// subtree's labels (and hints) are unchanged, because the walk is
  /// deterministic in exactly these inputs.
  struct NodeRepairCache {
    Graph sub;
    std::vector<Vertex> to_global;
    std::vector<Vertex> ann;
    uint64_t shortcuts_into = 0;
  };

  /// Shared RebuildLabels / RepairLabels validation: vertex count and
  /// pendant-structure checks, then the wholesale contraction refresh.
  /// On success *core_out points at the (refreshed) core graph.
  Status PrepareRelabel(const Graph& g, const Graph** core_out);

  /// The top-down level-parallel relabel walk over the stored hierarchy.
  /// scoped=false recomputes every node (RebuildLabels); scoped=true cuts
  /// off clean subtrees against repair_cache_. Both populate the cache.
  Status RelabelWalk(const Graph& core, bool scoped, bool tail_pruning,
                     ThreadPool& pool);

  /// The lazily built member pool (satellite of the per-call-ThreadPool
  /// fix): rebuilt only when the resolved thread count changes.
  ThreadPool& ResolvePool(uint32_t num_threads);

  Hc2lStats stats_;
  /// Degree-one contraction; null when options.contract_degree_one == false
  /// (then core ids == original ids).
  std::unique_ptr<DegreeOneContraction> contraction_;
  BalancedTreeHierarchy hierarchy_;
  /// Cache-aligned flattened labels: vertex v's level-k distance array starts
  /// at labels_.arena[labels_.level_start[labels_.base[v] + k]] and holds
  /// labels_.level_len[labels_.base[v] + k] entries.
  LabelStore labels_;
  /// Route hints, shaped exactly like labels_ (same offset tables): entry
  /// (v, level, i) is the first core-graph hop from v toward that level's
  /// i-th hub (kInvalidVertex when v is the hub or the hub is unreachable).
  /// Empty tables when the index is hint-less (route_hints = false, or an
  /// HC2L0002 load).
  LabelStore hints_;
  /// The file mapping backing view-mode arenas (Load with use_mmap); null
  /// for built or heap-loaded indexes. Held for lifetime only — all access
  /// goes through the label stores.
  std::shared_ptr<MappedFile> mapping_;
  /// Node-indexed relabel-walk inputs; empty = cold (after Build/Load), so
  /// the next RepairLabels falls back to a full walk that populates it.
  std::vector<NodeRepairCache> repair_cache_;
  /// Tail-pruning flag the cache (and current labels) were produced with.
  bool repair_cache_tail_pruning_ = true;
  RepairStats repair_stats_;
  /// Lazily built rebuild/repair pool, shared across Clone()s so a live
  /// update loop reuses one set of workers instead of churning threads.
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace hc2l

#endif  // HC2L_CORE_HC2L_H_
