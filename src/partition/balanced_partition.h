#ifndef HC2L_PARTITION_BALANCED_PARTITION_H_
#define HC2L_PARTITION_BALANCED_PARTITION_H_

#include <vector>

#include "graph/graph.h"

namespace hc2l {

/// Result of Algorithm 1 (Balanced Partition): two initial partitions plus
/// the cut region between them. The three sets are disjoint and cover all
/// vertices of the input graph.
struct BalancedPartitionResult {
  std::vector<Vertex> part_a;      // P'_A
  std::vector<Vertex> cut_region;  // C
  std::vector<Vertex> part_b;      // P'_B
};

/// Algorithm 1 of the paper.
///
/// Picks two distant vertices v_A, v_B, orders every vertex by partition
/// weight pw(v) = d(v_A, v) - d(v_B, v), and takes the beta*|V| lowest /
/// highest as the initial partitions (rounded outward to whole pw-equivalence
/// classes). When the boundary classes collide (w_A == w_B) a *bottleneck*
/// vertex funnels all shortest paths; it is removed, the remaining graph is
/// re-partitioned recursively, and the bottleneck joins the cut region.
/// Disconnected inputs follow lines 2-10: partition inside the largest
/// component if it dominates, otherwise split whole components.
///
/// beta must lie in (0, 0.5]. Graphs with fewer than 2 vertices yield
/// degenerate results (everything in part_a).
BalancedPartitionResult BalancedPartition(const Graph& g, double beta);

}  // namespace hc2l

#endif  // HC2L_PARTITION_BALANCED_PARTITION_H_
