#include "partition/shortcuts.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "search/dijkstra.h"

namespace hc2l {

ShortcutResult ComputeShortcuts(
    const Graph& g, std::span<const Vertex> cut, std::span<const Vertex> part,
    const std::vector<std::vector<Dist>>& dist_from_cut) {
  HC2L_CHECK_EQ(cut.size(), dist_from_cut.size());
  const size_t n = g.NumVertices();
  std::vector<uint8_t> in_cut(n, 0);
  for (Vertex v : cut) in_cut[v] = 1;

  ShortcutResult result;
  // Line 2: border vertices = partition vertices adjacent to the cut.
  for (Vertex v : part) {
    for (const Arc& a : g.Neighbors(v)) {
      if (in_cut[a.to]) {
        result.border.push_back(v);
        break;
      }
    }
  }
  const size_t num_border = result.border.size();
  if (num_border < 2) return result;

  // Dijkstra from every border vertex inside G[P] (lines 3-6).
  Subgraph gp = InducedSubgraph(g, part);
  std::vector<Vertex> part_to_child(n, kInvalidVertex);
  for (size_t i = 0; i < part.size(); ++i) part_to_child[part[i]] = i;

  std::vector<std::vector<Dist>> d_gp(num_border,
                                      std::vector<Dist>(num_border));
  Dijkstra dijkstra(gp.graph);
  for (size_t i = 0; i < num_border; ++i) {
    dijkstra.Run(part_to_child[result.border[i]]);
    for (size_t j = 0; j < num_border; ++j) {
      d_gp[i][j] = dijkstra.DistanceTo(part_to_child[result.border[j]]);
    }
  }

  // Lines 7-8: true distances d_G(b, b') = min(d_G[P], best detour through a
  // cut vertex).
  std::vector<std::vector<Dist>> d_g = d_gp;
  for (size_t i = 0; i < num_border; ++i) {
    for (size_t j = i + 1; j < num_border; ++j) {
      Dist through_cut = kInfDist;
      for (size_t c = 0; c < cut.size(); ++c) {
        const Dist to_b = dist_from_cut[c][result.border[i]];
        const Dist to_b2 = dist_from_cut[c][result.border[j]];
        if (to_b == kInfDist || to_b2 == kInfDist) continue;
        through_cut = std::min(through_cut, to_b + to_b2);
      }
      const Dist d = std::min(d_gp[i][j], through_cut);
      d_g[i][j] = d_g[j][i] = d;
    }
  }

  // Lines 9-16: add non-redundant shortcuts.
  for (size_t i = 0; i < num_border; ++i) {
    for (size_t j = i + 1; j < num_border; ++j) {
      if (d_g[i][j] >= d_gp[i][j]) continue;  // condition (1) of Lemma 4.11
      bool redundant = false;
      for (size_t k = 0; k < num_border && !redundant; ++k) {
        if (k == i || k == j) continue;
        if (d_g[i][k] != kInfDist && d_g[k][j] != kInfDist &&
            d_g[i][k] + d_g[k][j] == d_g[i][j]) {
          redundant = true;  // condition (2) of Lemma 4.11
        }
      }
      if (!redundant) {
        HC2L_CHECK_LE(d_g[i][j], std::numeric_limits<Weight>::max());
        result.shortcuts.push_back({result.border[i], result.border[j],
                                    static_cast<Weight>(d_g[i][j])});
      }
    }
  }
  return result;
}

bool IsDistancePreserving(const Graph& parent, const Graph& enhanced,
                          std::span<const Vertex> part_to_parent) {
  HC2L_CHECK_EQ(enhanced.NumVertices(), part_to_parent.size());
  Dijkstra in_parent(parent);
  Dijkstra in_enhanced(enhanced);
  for (Vertex v = 0; v < enhanced.NumVertices(); ++v) {
    in_parent.Run(part_to_parent[v]);
    in_enhanced.Run(v);
    for (Vertex w = 0; w < enhanced.NumVertices(); ++w) {
      if (in_enhanced.DistanceTo(w) != in_parent.DistanceTo(part_to_parent[w])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace hc2l
