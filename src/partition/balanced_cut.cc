#include "partition/balanced_cut.h"

#include <algorithm>

#include "common/check.h"
#include "flow/vertex_cut.h"
#include "partition/balanced_partition.h"

namespace hc2l {

namespace {

enum Side : uint8_t { kSideA = 0, kSideB = 1, kSideCutRegion = 2 };

/// Assigns the connected components of g minus `cut` to two partitions,
/// largest component first, always into the currently smaller side
/// (Algorithm 2, lines 13-15). Returns {part_a, part_b}.
std::pair<std::vector<Vertex>, std::vector<Vertex>> AssignComponents(
    const Graph& g, const std::vector<Vertex>& cut) {
  const size_t n = g.NumVertices();
  std::vector<uint8_t> blocked(n, 0);
  for (Vertex v : cut) blocked[v] = 1;

  std::vector<int32_t> component(n, -1);
  std::vector<std::vector<Vertex>> members;
  std::vector<Vertex> stack;
  for (Vertex start = 0; start < n; ++start) {
    if (blocked[start] || component[start] != -1) continue;
    const int32_t id = static_cast<int32_t>(members.size());
    members.emplace_back();
    component[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      members[id].push_back(v);
      for (const Arc& a : g.Neighbors(v)) {
        if (!blocked[a.to] && component[a.to] == -1) {
          component[a.to] = id;
          stack.push_back(a.to);
        }
      }
    }
  }
  std::sort(members.begin(), members.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });

  std::pair<std::vector<Vertex>, std::vector<Vertex>> out;
  for (auto& cc : members) {
    auto& target = out.first.size() <= out.second.size() ? out.first
                                                         : out.second;
    target.insert(target.end(), cc.begin(), cc.end());
  }
  return out;
}

}  // namespace

BalancedCutResult BalancedCut(const Graph& g, double beta) {
  const size_t n = g.NumVertices();
  BalancedCutResult result;
  if (n == 0) return result;

  const BalancedPartitionResult initial = BalancedPartition(g, beta);
  std::vector<uint8_t> side(n, kSideCutRegion);
  for (Vertex v : initial.part_a) side[v] = kSideA;
  for (Vertex v : initial.part_b) side[v] = kSideB;

  // Frontier vertices C_A / C_B (partition vertices with cross edges) join
  // the flow graph alongside the whole cut region.
  std::vector<uint8_t> frontier(n, 0);
  for (Vertex u = 0; u < n; ++u) {
    if (side[u] != kSideA) continue;
    for (const Arc& a : g.Neighbors(u)) {
      if (side[a.to] == kSideB) {
        frontier[u] = 1;
        frontier[a.to] = 1;
      }
    }
  }

  std::vector<Vertex> flow_vertices;
  for (Vertex v = 0; v < n; ++v) {
    if (side[v] == kSideCutRegion || frontier[v]) flow_vertices.push_back(v);
  }

  // Sources: C_A plus cut-region vertices adjacent to the A-interior.
  // Sinks: C_B plus cut-region vertices adjacent to the B-interior.
  std::vector<Vertex> sources;
  std::vector<Vertex> sinks;
  for (Vertex v : flow_vertices) {
    if (side[v] == kSideA) {
      sources.push_back(v);
      continue;
    }
    if (side[v] == kSideB) {
      sinks.push_back(v);
      continue;
    }
    bool touches_a_interior = false;
    bool touches_b_interior = false;
    for (const Arc& a : g.Neighbors(v)) {
      if (side[a.to] == kSideA && !frontier[a.to]) touches_a_interior = true;
      if (side[a.to] == kSideB && !frontier[a.to]) touches_b_interior = true;
    }
    if (touches_a_interior) sources.push_back(v);
    if (touches_b_interior) sinks.push_back(v);
  }

  std::vector<Vertex> best_cut;
  if (!sources.empty() && !sinks.empty()) {
    Subgraph flow_sub = InducedSubgraph(g, flow_vertices);
    std::vector<Vertex> to_child(n, kInvalidVertex);
    for (size_t i = 0; i < flow_vertices.size(); ++i) {
      to_child[flow_vertices[i]] = static_cast<Vertex>(i);
    }
    auto map_to_child = [&](const std::vector<Vertex>& in) {
      std::vector<Vertex> out;
      out.reserve(in.size());
      for (Vertex v : in) out.push_back(to_child[v]);
      return out;
    };
    const std::vector<Vertex> child_sources = map_to_child(sources);
    const std::vector<Vertex> child_sinks = map_to_child(sinks);
    const VertexCutResult cuts =
        MinStVertexCut(flow_sub.graph, child_sources, child_sinks);

    // Evaluate both candidate cuts; keep the one whose component assignment
    // is more balanced (Section 4.1.1: "we evaluate both options and pick
    // the more balanced one").
    size_t best_imbalance = SIZE_MAX;
    for (const std::vector<Vertex>* candidate :
         {&cuts.s_side_cut, &cuts.t_side_cut}) {
      std::vector<Vertex> cut_parent;
      cut_parent.reserve(candidate->size());
      for (Vertex v : *candidate) cut_parent.push_back(flow_sub.to_parent[v]);
      auto [a, b] = AssignComponents(g, cut_parent);
      const size_t imbalance = std::max(a.size(), b.size());
      if (imbalance < best_imbalance) {
        best_imbalance = imbalance;
        best_cut = std::move(cut_parent);
        result.part_a = std::move(a);
        result.part_b = std::move(b);
      }
    }
  } else {
    // The initial partitions are already separated (disconnected input, or
    // an absorbing cut region with no path role): the empty cut is minimal.
    auto [a, b] = AssignComponents(g, best_cut);
    result.part_a = std::move(a);
    result.part_b = std::move(b);
  }

  result.cut = std::move(best_cut);
  HC2L_CHECK_EQ(result.part_a.size() + result.part_b.size() +
                    result.cut.size(),
                n);
  return result;
}

bool IsValidSeparator(const Graph& g, const BalancedCutResult& result) {
  std::vector<uint8_t> blocked(g.NumVertices(), 0);
  for (Vertex v : result.cut) blocked[v] = 1;
  std::vector<uint8_t> mark(g.NumVertices(), 0);
  for (Vertex v : result.part_b) mark[v] = 1;

  std::vector<uint8_t> visited(g.NumVertices(), 0);
  std::vector<Vertex> stack;
  for (Vertex s : result.part_a) {
    if (visited[s] || blocked[s]) continue;
    visited[s] = 1;
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      if (mark[v]) return false;
      for (const Arc& a : g.Neighbors(v)) {
        if (!visited[a.to] && !blocked[a.to]) {
          visited[a.to] = 1;
          stack.push_back(a.to);
        }
      }
    }
  }
  return true;
}

}  // namespace hc2l
