#ifndef HC2L_PARTITION_BALANCED_CUT_H_
#define HC2L_PARTITION_BALANCED_CUT_H_

#include <vector>

#include "graph/graph.h"

namespace hc2l {

/// Result of Algorithm 2 (Balanced Cut): a vertex cut and the two final
/// partitions. Every path between part_a and part_b passes through the cut;
/// the three sets are disjoint and cover the graph.
struct BalancedCutResult {
  std::vector<Vertex> part_a;  // P_A
  std::vector<Vertex> cut;     // V_cut
  std::vector<Vertex> part_b;  // P_B
};

/// Algorithm 2 of the paper.
///
/// Runs BalancedPartition, builds the s-t flow graph over the cut region plus
/// the cross-partition frontier vertices C_A / C_B (Figure 4), computes a
/// minimum s-t vertex cut with Dinitz's algorithm, extracts both the S-side
/// and the T-side minimum cuts from the residual graph, and keeps whichever
/// yields the more balanced final partition after greedily assigning the
/// connected components of G \ V_cut (largest first, to the smaller side).
///
/// Direct edges between the initial partitions are handled by the
/// vertex-split reduction itself: frontier vertices are ordinary flow-graph
/// vertices with unit inner capacity, so one endpoint of any such edge ends
/// up in the cut while the other stays in its partition, exactly as
/// Section 4.1.1 prescribes.
BalancedCutResult BalancedCut(const Graph& g, double beta);

/// True iff removing `cut` from g leaves part_a and part_b with no connecting
/// path (test/debug helper; treats membership literally).
bool IsValidSeparator(const Graph& g, const BalancedCutResult& result);

}  // namespace hc2l

#endif  // HC2L_PARTITION_BALANCED_CUT_H_
