#ifndef HC2L_PARTITION_SHORTCUTS_H_
#define HC2L_PARTITION_SHORTCUTS_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace hc2l {

/// Result of Algorithm 3 (Add Shortcuts) for one partition.
struct ShortcutResult {
  /// Non-redundant shortcuts between border vertices, in the ids of the
  /// graph passed to ComputeShortcuts. Adding these to the induced subgraph
  /// G[P] makes it distance-preserving (Definition 4.5).
  std::vector<Edge> shortcuts;
  /// Border vertices of the partition (diagnostics).
  std::vector<Vertex> border;
};

/// Algorithm 3 of the paper.
///
/// `g` is the current (already distance-preserving) subgraph, `cut` its
/// vertex cut and `part` one side of the partition. `dist_from_cut[j]` must
/// hold distances in `g` from cut[j] to every vertex of `g` — the labelling
/// construction already computes these, so they are passed in rather than
/// recomputed.
///
/// For every pair of border vertices (vertices of `part` adjacent to the
/// cut) the true distance d_G is the minimum of the within-partition distance
/// d_G[P] and the best detour through a cut vertex (line 7-8). A shortcut is
/// added iff the detour is strictly shorter and no third border vertex lies
/// on it (Lemma 4.11's redundancy conditions).
ShortcutResult ComputeShortcuts(
    const Graph& g, std::span<const Vertex> cut, std::span<const Vertex> part,
    const std::vector<std::vector<Dist>>& dist_from_cut);

/// Verifies the distance-preserving property (Definition 4.5) of the
/// shortcut-enhanced subgraph G<P> by comparing all-pairs distances against
/// the parent graph. O(|P| * |E|) per vertex — tests only.
bool IsDistancePreserving(const Graph& parent, const Graph& enhanced,
                          std::span<const Vertex> part_to_parent);

}  // namespace hc2l

#endif  // HC2L_PARTITION_SHORTCUTS_H_
