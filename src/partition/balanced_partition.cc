#include "partition/balanced_partition.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "search/dijkstra.h"

namespace hc2l {

namespace {

/// Signed partition weight pw(v) = d(v_A, v) - d(v_B, v).
using PartitionWeight = int64_t;

/// Maps a result expressed in subgraph ids back to parent ids.
BalancedPartitionResult MapToParent(const BalancedPartitionResult& child,
                                    const std::vector<Vertex>& to_parent) {
  BalancedPartitionResult out;
  auto map_all = [&](const std::vector<Vertex>& in, std::vector<Vertex>* dst) {
    dst->reserve(in.size());
    for (Vertex v : in) dst->push_back(to_parent[v]);
  };
  map_all(child.part_a, &out.part_a);
  map_all(child.cut_region, &out.cut_region);
  map_all(child.part_b, &out.part_b);
  return out;
}

}  // namespace

BalancedPartitionResult BalancedPartition(const Graph& g, double beta) {
  HC2L_CHECK_GT(beta, 0.0);
  HC2L_CHECK_LE(beta, 0.5);
  const size_t n = g.NumVertices();
  BalancedPartitionResult result;
  if (n == 0) return result;
  if (n == 1) {
    result.part_a = {0};
    return result;
  }

  // Lines 2-10: disconnected input.
  ComponentInfo cc = ConnectedComponents(g);
  if (cc.num_components > 1) {
    // Identify largest and second-largest components.
    uint32_t largest = 0;
    for (uint32_t c = 1; c < cc.num_components; ++c) {
      if (cc.sizes[c] > cc.sizes[largest]) largest = c;
    }
    if (cc.sizes[largest] > (1.0 - beta) * static_cast<double>(n)) {
      // Partition within the dominant component; everything else joins the
      // cut region (it is disconnected from both sides, so any later vertex
      // cut still separates).
      std::vector<Vertex> members;
      members.reserve(cc.sizes[largest]);
      std::vector<Vertex> rest;
      for (Vertex v = 0; v < n; ++v) {
        (cc.component_of[v] == largest ? members : rest).push_back(v);
      }
      Subgraph sub = InducedSubgraph(g, members);
      BalancedPartitionResult inner =
          MapToParent(BalancedPartition(sub.graph, beta), sub.to_parent);
      inner.cut_region.insert(inner.cut_region.end(), rest.begin(),
                              rest.end());
      return inner;
    }
    uint32_t second = largest == 0 ? 1 : 0;
    for (uint32_t c = 0; c < cc.num_components; ++c) {
      if (c != largest && cc.sizes[c] > cc.sizes[second]) second = c;
    }
    for (Vertex v = 0; v < n; ++v) {
      if (cc.component_of[v] == largest) {
        result.part_a.push_back(v);
      } else if (cc.component_of[v] == second) {
        result.part_b.push_back(v);
      } else {
        result.cut_region.push_back(v);
      }
    }
    return result;
  }

  // Lines 11-12: find two distant vertices with two Dijkstra sweeps.
  Dijkstra dijkstra(g);
  dijkstra.Run(0);
  const Vertex v_a = dijkstra.FurthestVertex();
  std::vector<Dist> dist_a(n);
  dijkstra.Run(v_a);
  for (Vertex v = 0; v < n; ++v) dist_a[v] = dijkstra.DistanceTo(v);
  const Vertex v_b = dijkstra.FurthestVertex();
  dijkstra.Run(v_b);

  // Line 13: order vertices by partition weight.
  std::vector<std::pair<PartitionWeight, Vertex>> order(n);
  for (Vertex v = 0; v < n; ++v) {
    const PartitionWeight pw = static_cast<PartitionWeight>(dist_a[v]) -
                               static_cast<PartitionWeight>(dijkstra.DistanceTo(v));
    order[v] = {pw, v};
  }
  std::sort(order.begin(), order.end());

  // Lines 14-17: initial beta*|V| prefix/suffix and their boundary weights.
  const size_t take = std::max<size_t>(
      1, static_cast<size_t>(beta * static_cast<double>(n)));
  const PartitionWeight w_a = order[take - 1].first;
  const PartitionWeight w_b = order[n - take].first;

  if (w_a == w_b) {
    // Lines 18-22: boundary equivalence class spans both partitions — a
    // bottleneck. Remove the class member closest to v_A and re-partition.
    Vertex bottleneck = kInvalidVertex;
    Dist best = kInfDist;
    for (const auto& [pw, v] : order) {
      if (pw != w_a) continue;
      if (dist_a[v] < best) {
        best = dist_a[v];
        bottleneck = v;
      }
    }
    HC2L_CHECK_NE(bottleneck, kInvalidVertex);
    std::vector<Vertex> remaining;
    remaining.reserve(n - 1);
    for (Vertex v = 0; v < n; ++v) {
      if (v != bottleneck) remaining.push_back(v);
    }
    Subgraph sub = InducedSubgraph(g, remaining);
    BalancedPartitionResult inner =
        MapToParent(BalancedPartition(sub.graph, beta), sub.to_parent);
    inner.cut_region.push_back(bottleneck);
    return inner;
  }

  // Lines 23-25: round partitions outward to whole equivalence classes.
  for (const auto& [pw, v] : order) {
    if (pw <= w_a) {
      result.part_a.push_back(v);
    } else if (pw >= w_b) {
      result.part_b.push_back(v);
    } else {
      result.cut_region.push_back(v);
    }
  }
  return result;
}

}  // namespace hc2l
