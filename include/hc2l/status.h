#ifndef HC2L_PUBLIC_STATUS_H_
#define HC2L_PUBLIC_STATUS_H_

/// Recoverable error model of the public HC2L API.
///
/// The library does not use exceptions. Every fallible entry point of the
/// public facade (hc2l/router.h) — and of the internal index classes it wraps
/// — reports failure through `Status` (no payload) or `Result<T>` (a value or
/// a Status), replacing the former bool-plus-out-string plumbing. Bad *input*
/// (a missing file, a corrupt index, an out-of-range vertex id, invalid build
/// options) must never abort the process; aborts are reserved for violated
/// internal invariants, i.e. library bugs.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace hc2l {

/// Canonical error space, deliberately small. Codes describe *who must act*:
/// the caller (kInvalidArgument, kFailedPrecondition), the environment
/// (kNotFound, kUnavailable), the data (kDataLoss), or the library authors
/// (kInternal, kUnimplemented).
enum class StatusCode : int {
  kOk = 0,
  /// The caller passed a bad value: vertex id out of range, beta outside
  /// (0, 0.5], a file that is not an HC2L index.
  kInvalidArgument = 1,
  /// A named resource (file) does not exist or cannot be opened for reading.
  kNotFound = 2,
  /// A resource exists but its contents are truncated or corrupt.
  kDataLoss = 3,
  /// The operation is valid in general but not in the object's current
  /// state (e.g. RebuildLabels on a directed index).
  kFailedPrecondition = 4,
  /// The environment refused an operation that may succeed later (e.g. a
  /// file could not be opened or fully written).
  kUnavailable = 5,
  /// Recognized but not (yet) supported.
  kUnimplemented = 6,
  /// An invariant the library promised to uphold did not hold.
  kInternal = 7,
  /// The request's deadline (QueryOptions::deadline) expired before the
  /// operation completed. Caller-owned output buffers may hold partial
  /// results; their contents are unspecified.
  kDeadlineExceeded = 8,
  /// The server shed this work to protect itself (admission control:
  /// connection or in-flight-request limits reached). The operation was NOT
  /// attempted; retrying after a backoff is expected to succeed. On the
  /// hc2ld wire this code carries a "retry_after_ms" hint (docs/server.md).
  kOverloaded = 9,
  /// A computed value left its representable range (e.g. an edge-weight
  /// update pushed a shortest-path distance past the 32-bit label
  /// encoding). The input was well-formed; a differently-scaled input
  /// would succeed.
  kOutOfRange = 10,
};

/// Human-readable name of a code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Success-or-error of one operation: a code plus a descriptive message.
/// Cheap to move; the OK status carries no allocation.
class Status {
 public:
  /// Default is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>", for logs and error output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value of type T or the Status explaining why there is none. T may be
/// move-only (the index types are). Accessing value() on an error Result is
/// a programming bug and aborts with the status printed — errors must be
/// checked with ok() first; they never abort on their own.
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value) : value_(std::move(value)) {}
  /// Failure. A would-be-OK status is converted to kInternal: an error
  /// Result must carry an error.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    CheckOk();
    return *value_;
  }
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "hc2l::Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace hc2l

#endif  // HC2L_PUBLIC_STATUS_H_
