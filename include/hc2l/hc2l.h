#ifndef HC2L_PUBLIC_HC2L_H_
#define HC2L_PUBLIC_HC2L_H_

/// Umbrella header of the public HC2L API. Consumers (the CLI, the examples,
/// downstream applications) include this one header and program against:
///
///   - hc2l::Router / hc2l::ThreadedRouter  — build, open, save, query
///   - hc2l::QueryRequest / hc2l::Execute   — the zero-copy request/response
///                                            bulk-query model (hc2l/query.h)
///   - hc2l::QueryServer (hc2l/server.h)    — the hc2ld TCP serving front
///                                            end (not pulled in here; it is
///                                            opt-in for socket-free builds)
///   - hc2l::Status / hc2l::Result<T>       — the recoverable error model
///   - hc2l::Graph / hc2l::Digraph          — graph assembly (GraphBuilder,
///                                            DigraphBuilder)
///   - DIMACS .gr I/O and the synthetic road-network generator
///   - small utilities used throughout the examples (Rng, Timer)
///
/// The concrete index classes (src/core/hc2l.h, src/core/directed_hc2l.h)
/// are internal; see docs/api.md.

#include "common/rng.h"
#include "common/timer.h"
#include "common/types.h"
#include "graph/digraph.h"
#include "graph/dimacs_io.h"
#include "graph/graph.h"
#include "graph/road_network_generator.h"
#include "hc2l/router.h"
#include "hc2l/status.h"

#endif  // HC2L_PUBLIC_HC2L_H_
