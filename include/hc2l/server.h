#ifndef HC2L_PUBLIC_SERVER_H_
#define HC2L_PUBLIC_SERVER_H_

/// hc2ld — the HC2L serving front end: line-delimited JSON over TCP.
///
/// QueryServer wraps a Router in an epoll reactor: ONE event thread owns
/// every socket (accept, nonblocking reads/writes, deadline eviction) and a
/// small worker pool executes requests off the event thread, each
/// connection carrying one reusable buffer set (requests parse into and
/// execute out of the same memory line after line — the zero-copy
/// request/response facade API end to end). All queries run through one
/// shared ThreadedRouter, so concurrent connections share the engine's
/// worker pool instead of spawning their own. Small concurrently-arriving
/// point/batch requests are coalesced into one engine batch (bit-identical
/// answers, demultiplexed per connection; ServerOptions::coalesce).
///
///   hc2l::Result<hc2l::Router> router = hc2l::Router::Open("city.idx");
///   hc2l::Result<hc2l::QueryServer> server =
///       hc2l::QueryServer::Start(*router, {.port = 8040});
///   std::printf("serving on %u\n", server->port());
///   server->Wait();   // until Stop()/Drain() from another thread
///
/// The serving path is fail-safe by construction:
///
///  - ServerLimits bound everything a client can consume: concurrent
///    connections (excess is shed at accept with one Overloaded response
///    line), in-flight requests (excess sheds per-request with a
///    retry_after_ms hint instead of queueing), idle/read/write deadlines
///    (slow clients — slowloris — are evicted), request-line bytes and
///    requests per connection.
///  - Drain() is the graceful counterpart to Stop(): stop accepting,
///    answer every request already received, close each connection as it
///    finishes, hard-stop whatever is left when the budget expires.
///  - Reload() hot-swaps the served index RCU-style: the new file loads
///    into a fresh epoch while queries keep answering from the old
///    snapshot, then an atomic swap publishes it; in-flight requests keep
///    their snapshot alive until they finish. Exposed on the wire as the
///    "reload" op and on hc2ld as SIGHUP.
///
/// Wire protocol (requests, responses, the nc-friendly examples):
/// docs/server.md; operational knobs: the "Operations" section there. The
/// daemon binary is tools/hc2ld.cc; `hc2l serve` and `hc2l client` wrap the
/// same pieces for smoke tests.
///
/// Ownership: the Router passed to Start is borrowed and must stay alive
/// and unmoved until the server is stopped AND destroyed (after a Reload
/// the server stops using it but holds index snapshots of its own).
/// QueryServer is movable, not copyable; Stop() is idempotent and joins
/// the event thread and every reactor worker before returning.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "hc2l/router.h"
#include "hc2l/status.h"

namespace hc2l {

/// Bounds on what clients can consume. Zero means "unlimited" for every
/// field except retry_after_ms. The defaults serve hundreds of well-behaved
/// clients while keeping one hostile or broken one from taking the daemon
/// down.
struct ServerLimits {
  /// Concurrent connections. The acceptor sheds the excess immediately:
  /// one Overloaded response line (best effort), then close — never an
  /// unbounded backlog of accepted-but-unserved sockets.
  uint32_t max_connections = 1024;
  /// Requests executing concurrently across all connections. The excess is
  /// shed per-request with an Overloaded + retry_after_ms response; the
  /// connection stays usable. ping/info/reload bypass this (they must work
  /// on an overloaded server).
  uint32_t max_in_flight = 256;
  /// Backoff hint carried by every Overloaded response.
  uint32_t retry_after_ms = 100;
  /// A connection delivering no bytes for this long is evicted (one
  /// DeadlineExceeded response line, then close).
  uint32_t idle_timeout_ms = 300'000;
  /// A started request line must complete (reach its '\n') within this
  /// budget — the slowloris guard: a client trickling one byte at a time
  /// cannot hold a connection slot forever.
  uint32_t read_timeout_ms = 30'000;
  /// A client that stops draining its receive window keeps the server's
  /// pending response bytes blocked; after this long continuously blocked
  /// the connection is closed hard.
  uint32_t write_timeout_ms = 30'000;
  /// Requests answered on one connection before the server closes it
  /// (cycles long-lived connections; 0 = unlimited).
  uint64_t max_requests_per_connection = 0;
};

struct ServerOptions {
  /// Listen address. The default only accepts local connections; bind
  /// 0.0.0.0 deliberately to expose the daemon.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Query-engine threads shared by all connections; 0 = all hardware
  /// threads.
  uint32_t num_threads = 0;
  /// Engine sharding grain (ParallelOptions::min_shard_queries).
  uint32_t min_shard_queries = 1024;
  /// Per-connection input cap: a request line longer than this is rejected
  /// with one error response and discarded up to its newline — the
  /// connection stays usable and the per-connection buffer stays bounded
  /// regardless of what the client streams.
  size_t max_line_bytes = 1 << 20;
  /// Overload, deadline and per-connection budgets.
  ServerLimits limits;
  /// Index file the "reload" op (and hc2ld's SIGHUP) reopens when the
  /// request names no explicit path. Empty: pathless reloads fail with
  /// InvalidArgument.
  std::string index_path;
  /// DIMACS graph file re-read and attached to every reloaded snapshot so
  /// the "update_weights" op keeps working across reloads (an Open()ed
  /// router has no graph of its own). Empty: reloaded snapshots accept no
  /// weight updates until the next restart with a graph-attached router.
  std::string graph_path;
  /// Reload ("reload" op / SIGHUP) reopens the index with OpenMode::kMmap —
  /// set this when the initial router was opened that way, so a hot reload
  /// keeps the label arenas file-backed instead of silently deserializing
  /// them onto the heap.
  bool open_mmap = false;
  /// Reactor worker threads (request execution off the event thread);
  /// 0 = clamp(hardware_concurrency / 2, 2, 8).
  uint32_t reactor_threads = 0;
  /// Coalesce small concurrently-arriving default-option point/batch
  /// requests into one engine batch. Answers are bit-identical either way;
  /// disable to trade batching throughput for strict per-request execution.
  bool coalesce = true;
};

/// The TCP front end. Construction binds, listens and spawns the accept
/// loop; queries are served until Stop() or Drain().
class QueryServer {
 public:
  /// Serving counters, all monotonic except the two gauges (live,
  /// in_flight). Also exposed on the wire through the "info" op.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_shed = 0;   // over max_connections
    uint64_t connections_live = 0;   // gauge
    uint64_t requests_admitted = 0;
    uint64_t requests_shed = 0;      // over max_in_flight
    uint64_t in_flight = 0;          // gauge
    uint64_t epoch = 0;              // bumps on every successful Reload or
                                     // UpdateWeights
    uint64_t reloads = 0;            // successful Reload count
    uint64_t weight_updates = 0;     // successful UpdateWeights count
    uint64_t requests_coalesced = 0;  // requests answered via a merged batch
    uint64_t coalesced_batches = 0;   // merged engine batches executed
  };

  /// Binds host:port and starts serving `router`. Errors: kUnavailable
  /// (socket/bind/listen failure, port already in use), kInvalidArgument
  /// (unparseable host).
  static Result<QueryServer> Start(const Router& router,
                                   const ServerOptions& options = {});

  QueryServer(QueryServer&&) noexcept;
  QueryServer& operator=(QueryServer&&) noexcept;
  ~QueryServer();  // implies Stop()

  /// The bound port (the actual one when options.port was 0).
  uint16_t port() const;

  /// Connections served so far (accepted, including already-closed ones).
  uint64_t connections_accepted() const;

  /// Full serving-counter snapshot.
  Stats stats() const;

  /// Hot-swaps the served index: opens `path` (empty = the configured
  /// ServerOptions::index_path) into a fresh snapshot + engine while
  /// queries keep answering from the current one, then publishes it
  /// atomically. On any error — missing file, corrupt index, wrong format —
  /// the old snapshot keeps serving untouched. Safe from any thread;
  /// concurrent reloads serialize. Errors: kInvalidArgument (no path),
  /// plus everything Router::Open can return.
  Status Reload(const std::string& path = "");

  /// Current serving epoch (0 until the first Reload/UpdateWeights).
  uint64_t epoch() const;

  /// Live weight update: repairs a standby copy of the serving index for
  /// the changed edge weights (Router::UpdateWeights — scoped label repair,
  /// never a full rebuild in steady state) and publishes it exactly like
  /// Reload: RCU snapshot swap, epoch bump, in-flight queries keep the old
  /// snapshot. On any error — unknown edge, zero weight, no graph attached,
  /// repair overflow — the old snapshot keeps serving untouched and the
  /// epoch is unchanged. Safe from any thread; serializes with Reload().
  /// Exposed on the wire as the "update_weights" op.
  Status UpdateWeights(std::span<const EdgeDelta> edges);

  /// Graceful drain: stops accepting, lets every connection answer the
  /// requests it has already received (including pipelined ones still in
  /// the socket buffer), and closes each connection as it finishes. Returns
  /// true when every connection completed within `budget`; on expiry the
  /// stragglers are disconnected hard and false is returned. Afterwards the
  /// server is stopped (Wait() returns; Stop() is a no-op). Safe to call
  /// from any thread except a connection handler.
  bool Drain(std::chrono::milliseconds budget);

  /// Stops accepting, disconnects every client, joins all threads.
  /// Idempotent; safe to call from any thread except a connection handler.
  void Stop();

  /// Blocks until Stop() or Drain() completes (from another thread or a
  /// signal-driven self-pipe — see tools/hc2ld.cc).
  void Wait();

 private:
  struct Impl;
  explicit QueryServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace hc2l

#endif  // HC2L_PUBLIC_SERVER_H_
