#ifndef HC2L_PUBLIC_SERVER_H_
#define HC2L_PUBLIC_SERVER_H_

/// hc2ld — the HC2L serving front end: line-delimited JSON over TCP.
///
/// QueryServer wraps a borrowed, immutable Router in a listening socket:
/// one accept loop, one lightweight thread per connection, one reusable
/// buffer set per connection (requests parse into and execute out of the
/// same memory line after line — the zero-copy request/response facade API
/// end to end). All queries run through one shared ThreadedRouter, so
/// concurrent connections share the engine's worker pool instead of
/// spawning their own.
///
///   hc2l::Result<hc2l::Router> router = hc2l::Router::Open("city.idx");
///   hc2l::Result<hc2l::QueryServer> server =
///       hc2l::QueryServer::Start(*router, {.port = 8040});
///   std::printf("serving on %u\n", server->port());
///   server->Wait();   // until Stop() from another thread / signal handler
///
/// Wire protocol (requests, responses, the nc-friendly examples):
/// docs/server.md. The daemon binary is tools/hc2ld.cc; `hc2l serve` and
/// `hc2l client` wrap the same pieces for smoke tests.
///
/// Ownership: the Router must stay alive and unmoved until the server is
/// stopped AND destroyed. QueryServer is movable, not copyable; Stop() is
/// idempotent and joins every connection thread before returning.

#include <cstdint>
#include <memory>
#include <string>

#include "hc2l/router.h"
#include "hc2l/status.h"

namespace hc2l {

struct ServerOptions {
  /// Listen address. The default only accepts local connections; bind
  /// 0.0.0.0 deliberately to expose the daemon.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Query-engine threads shared by all connections; 0 = all hardware
  /// threads.
  uint32_t num_threads = 0;
  /// Engine sharding grain (ParallelOptions::min_shard_queries).
  uint32_t min_shard_queries = 1024;
  /// Per-connection input cap: a line longer than this fails the connection
  /// (one response line explaining why, then close).
  size_t max_line_bytes = 1 << 20;
};

/// The TCP front end. Construction binds, listens and spawns the accept
/// loop; queries are served until Stop().
class QueryServer {
 public:
  /// Binds host:port and starts serving `router`. Errors: kUnavailable
  /// (socket/bind/listen failure, port already in use), kInvalidArgument
  /// (unparseable host).
  static Result<QueryServer> Start(const Router& router,
                                   const ServerOptions& options = {});

  QueryServer(QueryServer&&) noexcept;
  QueryServer& operator=(QueryServer&&) noexcept;
  ~QueryServer();  // implies Stop()

  /// The bound port (the actual one when options.port was 0).
  uint16_t port() const;

  /// Connections served so far (accepted, including already-closed ones).
  uint64_t connections_accepted() const;

  /// Stops accepting, disconnects every client, joins all threads.
  /// Idempotent; safe to call from any thread except a connection handler.
  void Stop();

  /// Blocks until Stop() is called (from another thread or a signal-driven
  /// self-pipe — see tools/hc2ld.cc).
  void Wait();

 private:
  struct Impl;
  explicit QueryServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace hc2l

#endif  // HC2L_PUBLIC_SERVER_H_
