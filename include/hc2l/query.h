#ifndef HC2L_PUBLIC_QUERY_H_
#define HC2L_PUBLIC_QUERY_H_

/// The request/response bulk-query model of the public HC2L API.
///
/// An RPC front end (hc2ld, or any long-lived server) does not want the
/// facade's convenience methods: those return freshly allocated
/// std::vector results on every call, while a server wants to parse a
/// request into borrowed id spans, execute it into connection-owned output
/// buffers, and serialize from there — zero copies, zero per-request heap
/// traffic. This header is that contract:
///
///   - QueryRequest   — what to compute: a kind (point batch | matrix |
///                      k-nearest | route), source/target id spans, per-request
///                      QueryOptions (deadline, thread cap, missing-vertex
///                      policy).
///   - QueryOutput    — where to write it: caller-owned spans.
///   - QueryResponse  — what happened: slots written, result shape.
///
/// Router::Execute runs a request sequentially; ThreadedRouter::Execute
/// shards it over the query engine. Both produce bit-identical distances to
/// the vector-returning facade methods; the vector methods are in fact thin
/// wrappers over the same span paths.
///
/// Shape contract (violations are kInvalidArgument, never an abort):
///
///   kPointBatch  sources.size() == 1: one-to-many, distances[i] =
///                d(sources[0], targets[i]). Otherwise sources.size() must
///                equal targets.size(): pairwise, distances[i] =
///                d(sources[i], targets[i]). Either way
///                output.distances.size() must equal targets.size() exactly.
///   kMatrix      row-major many-to-many: distances[i * targets.size() + j]
///                = d(sources[i], targets[j]); output.distances.size() must
///                equal sources.size() * targets.size() exactly.
///   kKNearest    sources.size() == 1; targets are the candidates. Requires
///                output.distances.size() == output.vertices.size() >=
///                min(k, targets.size()); QueryResponse::written reports how
///                many (distance, vertex) slots actually hold results —
///                unreachable candidates are excluded, so it may be fewer.
///   kRoute       sources.size() == 1 and targets.size() == 1: one unpacked
///                shortest path. output.vertices receives the full vertex
///                sequence (source first, target last; nothing when the
///                target is unreachable) and output.distances[0] the path
///                weight (kInfDist when unreachable), so
///                output.distances.size() must be >= 1. A path longer than
///                output.vertices fails with kInvalidArgument naming the
///                required size. `k` must be 0 or 1 (alternatives go through
///                Router::Routes, which allocates per route).
///                QueryResponse::written reports the vertex count; shape is
///                (1, written). Requires route hints or an attached graph —
///                otherwise kFailedPrecondition.
///
/// Deadline semantics: QueryOptions::deadline is a wall-clock budget
/// measured from Execute entry; zero means unlimited. Expiry is detected at
/// chunk boundaries (roughly every thousand queries) and fails the request
/// with kDeadlineExceeded; output spans may then hold partial results and
/// their contents are unspecified. A request whose budget is already spent
/// fails before computing anything.
///
/// Buffer ownership: the request and output spans are BORROWED for the
/// duration of the Execute call only — the library never stores them. The
/// caller may (and a server should) reuse the same buffers across requests.
/// Output spans must not alias each other or the input spans.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/types.h"

namespace hc2l {

/// What a QueryRequest computes. See the shape contract above.
enum class QueryKind : uint8_t {
  kPointBatch = 0,
  kMatrix = 1,
  kKNearest = 2,
  kRoute = 3,
};

/// What to do with an out-of-range vertex id in a request. A serving front
/// end sees ids chosen by remote callers; whether a stale id should fail the
/// whole request or degrade to "unreachable" is the caller's call, not the
/// library's.
enum class MissingVertexPolicy : uint8_t {
  /// Any out-of-range id fails the request with kInvalidArgument (the
  /// default, matching the facade's vector-returning methods).
  kError = 0,
  /// Out-of-range ids behave like unreachable vertices: kInfDist distances,
  /// excluded from k-nearest results. The request succeeds.
  kUnreachable = 1,
  /// Trusted-caller fast path: ids are NOT validated at all. A front end
  /// that already range-checked every id (at parse time, say) skips the
  /// facade's second scan over the id spans — a few nanoseconds per target
  /// that a hot batch path cares about. An out-of-range id under this
  /// policy aborts the process (internal invariant), exactly like
  /// Router::DistanceUnchecked.
  kUnchecked = 2,
};

/// Per-request execution options.
struct QueryOptions {
  /// Wall-clock budget measured from Execute entry; zero = unlimited. On
  /// expiry the request fails with kDeadlineExceeded (output unspecified).
  std::chrono::nanoseconds deadline{0};
  /// Parallelism cap: 0 = the executor's default (Router: sequential;
  /// ThreadedRouter: its full pool), 1 = force inline sequential execution
  /// even on a ThreadedRouter, n > 1 = cap the shards in flight at n.
  uint32_t num_threads = 0;
  /// Out-of-range id handling; see MissingVertexPolicy.
  MissingVertexPolicy missing_vertices = MissingVertexPolicy::kError;
};

/// One bulk query: a kind, borrowed id spans, options. Cheap to construct
/// per request; the spans must stay valid for the Execute call.
struct QueryRequest {
  QueryKind kind = QueryKind::kPointBatch;
  /// kPointBatch: the single source (size 1) or per-pair sources;
  /// kMatrix: matrix rows; kKNearest and kRoute: the single source (size 1).
  std::span<const Vertex> sources;
  /// kPointBatch: batch targets or per-pair targets; kMatrix: matrix
  /// columns; kKNearest: the candidate set; kRoute: the single target
  /// (size 1).
  std::span<const Vertex> targets;
  /// kKNearest: how many nearest candidates to select. kRoute: must be 0 or
  /// 1 (the single shortest path).
  size_t k = 0;
  QueryOptions options;
};

/// Caller-owned output buffers. `vertices` is only written for kKNearest
/// (candidate ids parallel to `distances`) and kRoute (the unpacked vertex
/// sequence); other kinds ignore it.
struct QueryOutput {
  std::span<Dist> distances;
  std::span<Vertex> vertices;
};

/// Execution summary of a successful request.
struct QueryResponse {
  /// Slots written. kPointBatch: targets.size() distances; kMatrix:
  /// sources.size() * targets.size() distances; kKNearest: the number of
  /// selected neighbors (<= min(k, candidates)); kRoute: the number of path
  /// vertices (0 when the target is unreachable).
  size_t written = 0;
  /// Result shape: kMatrix reports (sources.size(), targets.size());
  /// kPointBatch, kKNearest and kRoute report (1, written).
  size_t rows = 0;
  size_t cols = 0;
};

}  // namespace hc2l

#endif  // HC2L_PUBLIC_QUERY_H_
