#ifndef HC2L_PUBLIC_ROUTER_H_
#define HC2L_PUBLIC_ROUTER_H_

/// hc2l::Router — the single public query API over both HC2L index flavours.
///
/// The paper (Farhan, Koehler, Ohrimenko, Wang, PACMMOD'23) describes one
/// query model: hierarchical cut 2-hop labels answering exact shortest-path
/// distances. The repo implements it twice — an undirected index with
/// degree-one contraction (format HC2L0002) and the Section 5.3 directed
/// extension (formats HC2D0001/HC2D0002, the latter carrying the ported
/// contraction). Router type-erases over the two so that
/// every consumer (CLI, examples, benches, a future RPC front end) programs
/// against one surface:
///
///   hc2l::Result<hc2l::Router> r = hc2l::Router::Build(graph, {});
///   if (!r.ok()) { ... r.status() ... }
///   hc2l::Result<hc2l::Dist> d = r->Distance(s, t);            // validated
///   hc2l::Dist fast = r->DistanceUnchecked(s, t);              // hot loops
///
///   hc2l::Result<hc2l::Router> o = hc2l::Router::Open("x.idx"); // sniffs
///   // o->directed() tells which format the file held.
///
/// Error model: every fallible entry point returns Status / Result<T>
/// (hc2l/status.h); bad input — missing or corrupt files, out-of-range
/// vertex ids, invalid options — never aborts the process.
///
/// Ownership: Router owns its index. Router is movable, not copyable.
/// Thread-safety: all query methods are const and safe to call concurrently;
/// the index is immutable after Build/Open. RebuildLabels is the one mutator
/// and must not race queries. A ThreadedRouter (WithThreads) *borrows* its
/// Router, which must stay alive and unmoved for the handle's lifetime.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "hc2l/query.h"
#include "hc2l/status.h"

namespace hc2l {

class Graph;
class Digraph;

/// Construction options, unified for both directions (Hc2lOptions and
/// DirectedHc2lOptions internally). Validated by Router::Build: beta must be
/// in (0, 0.5], leaf_size >= 1.
struct BuildOptions {
  /// Balance threshold beta in (0, 0.5]; the paper selects 0.2 (Section 5).
  double beta = 0.2;
  /// Recursion stops at subgraphs of at most this many vertices.
  uint32_t leaf_size = 8;
  /// Tail pruning (Definition 4.18): ~10-15% smaller labels, ~20% slower
  /// construction when on.
  bool tail_pruning = true;
  /// Degree-one contraction (Section 4.2.2), honoured by both flavours. For
  /// digraphs the contractible set is decided on the underlying undirected
  /// projection; one-way pendant edges resolve as offset-to-root in the
  /// existing direction and unreachable in the other (docs/directed.md).
  bool contract_degree_one = true;
  /// Record route hints next to the labels (the predecessor-toward-hub
  /// entries that Route unpacks paths from, ~one extra Vertex per label
  /// entry). Disabling keeps the hint-less legacy disk formats; Route then
  /// needs an attached graph to fall back on.
  bool route_hints = true;
  /// Construction threads; 0 = all hardware threads, >1 is the paper's
  /// HC2L_p variant (bit-identical index).
  uint32_t num_threads = 1;
};

/// Options for the parallel query handle (Router::WithThreads).
struct ParallelOptions {
  /// Threads participating in each call; 0 = all hardware threads.
  uint32_t num_threads = 0;
  /// Workloads below this many queries run inline on the caller (a query is
  /// tens of nanoseconds; shipping it to another core costs more).
  uint32_t min_shard_queries = 1024;
};

/// How Router::Open attaches an index file's label storage.
enum class OpenMode {
  /// Deserialize everything onto the heap (every format).
  kHeap,
  /// Map the label/hint arenas of a sectioned V4 file (HC2L0004/HC2D0004)
  /// in place: O(1) open — only the metadata section is parsed, no arena
  /// copy — with the mapped pages advised MADV_RANDOM for the label access
  /// pattern. Legacy formats silently fall back to the heap path (their
  /// arenas interleave with the metadata stream). Shard manifests open
  /// every member shard in this mode. Queries are bit-identical to kHeap.
  kMmap,
};

/// Size and construction statistics, unified across both index flavours.
/// Fields that only exist for one flavour are documented as such.
struct IndexInfo {
  bool directed = false;
  uint64_t num_vertices = 0;
  /// After degree-one contraction (both flavours); == num_vertices when the
  /// index was built with contract_degree_one = false.
  uint64_t num_core_vertices = 0;
  uint64_t num_contracted = 0;
  uint32_t tree_height = 0;
  uint64_t num_tree_nodes = 0;
  uint64_t max_cut_size = 0;
  double avg_cut_size = 0.0;
  /// Undirected only (the directed builder does not count its shortcuts).
  uint64_t num_shortcuts = 0;
  /// Stored distance values (both directions for directed indexes).
  uint64_t label_entries = 0;
  /// Logical label size: distance data + per-level offset tables — the
  /// paper-comparable quantity.
  uint64_t label_logical_bytes = 0;
  /// Resident label storage: cache-aligned, sentinel-padded arena(s) +
  /// offset tables (what the process actually holds in memory).
  uint64_t label_resident_bytes = 0;
  /// Bytes for O(1) LCA lookups (packed per-vertex tree codes).
  uint64_t lca_bytes = 0;
  /// Wall-clock seconds of the Build/RebuildLabels that produced this
  /// index. Undirected indexes persist their construction stats, so an
  /// opened HC2L0002 file reports the original build's time; directed
  /// indexes do not persist it and report 0 after Open.
  double build_seconds = 0.0;
  /// Label storage (arenas + offset tables, labels and route hints, all
  /// directions) split by backing: bytes served from a file mapping
  /// (OpenMode::kMmap on a V4 file; paged in on demand) vs bytes held on
  /// the heap. A mapped open views the offset tables as well as the
  /// arenas, so its heap share is only the parsed metadata.
  uint64_t mapped_bytes = 0;
  uint64_t heap_bytes = 0;
  /// Member shards when the router was opened from a shard manifest
  /// (HC2S0001); 0 for a monolithic index.
  uint64_t num_shards = 0;
};

class ThreadedRouter;

/// The facade. One non-null underlying index (undirected or directed),
/// selected at Build time by the graph type or at Open time by the file's
/// format magic.
class Router {
 public:
  /// Opens a serialized index, sniffing the format magic:
  /// HC2L0002/HC2L0003/HC2L0004 load the undirected index,
  /// HC2D0001/HC2D0002/HC2D0003/HC2D0004 the directed one (formats 0003 and
  /// up carry route hints), and HC2S0001 — a shard manifest written by
  /// `hc2l shard` — loads every member shard and answers queries across
  /// them, bit-identical to the monolithic index over the same graph.
  /// Errors: kNotFound (cannot open), kInvalidArgument (not an HC2L index
  /// file), kDataLoss (truncated or corrupt).
  static Result<Router> Open(const std::string& path);

  /// Open with an explicit label-storage mode (see OpenMode). The
  /// single-argument overload is Open(path, OpenMode::kHeap).
  static Result<Router> Open(const std::string& path, OpenMode mode);

  /// Builds an undirected index. Errors: kInvalidArgument (bad options).
  static Result<Router> Build(const Graph& graph,
                              const BuildOptions& options = {});

  /// Builds a directed index (contract_degree_one ignored; see BuildOptions).
  static Result<Router> Build(const Digraph& graph,
                              const BuildOptions& options = {});

  Router(Router&&) noexcept;
  Router& operator=(Router&&) noexcept;
  ~Router();

  /// True when the underlying index answers directed distances d(s -> t).
  bool directed() const;

  /// Number of vertices of the indexed graph.
  uint64_t NumVertices() const;

  /// Unified construction/size statistics.
  IndexInfo Info() const;

  /// Serializes the index in its flavour's format. Hint-carrying indexes
  /// (the route_hints default) write the sectioned, mmap-able
  /// HC2L0004/HC2D0004 layouts; hint-less ones keep the legacy layouts
  /// (HC2L0002 for undirected; HC2D0002 for contracted directed indexes,
  /// HC2D0001 for uncontracted ones — the latter stays readable by
  /// pre-contraction builds). A sharded router does not Save
  /// (kFailedPrecondition) — its on-disk form is the manifest it was opened
  /// from.
  Status Save(const std::string& path) const;

  /// Exact distance d(s, t) — d(s -> t) for directed indexes; kInfDist when
  /// t is unreachable (reachability is an answer, not an error). Errors:
  /// kInvalidArgument for out-of-range vertex ids.
  Result<Dist> Distance(Vertex s, Vertex t) const;

  /// Distance() without the range check, for hot loops that validated their
  /// inputs up front. Out-of-range ids abort (internal invariant).
  Dist DistanceUnchecked(Vertex s, Vertex t) const;

  /// One-to-many: d(source, targets[i]) for every target, in order. A thin
  /// allocating wrapper over BatchQueryInto.
  Result<std::vector<Dist>> BatchQuery(Vertex source,
                                       std::span<const Vertex> targets) const;

  /// Many-to-many: result[i][j] = d(sources[i], targets[j]), with
  /// target-side resolution hoisted once per matrix and L2-resident tiling.
  /// A thin allocating wrapper over the same path as DistanceMatrixInto.
  Result<std::vector<std::vector<Dist>>> DistanceMatrix(
      std::span<const Vertex> sources, std::span<const Vertex> targets) const;

  /// The k candidates nearest to (from, for directed) `source`, as
  /// (distance, candidate) pairs sorted ascending, ties broken
  /// deterministically by candidate order; unreachable candidates excluded.
  /// k == 0 or an empty candidate set is an empty result, not an error. A
  /// thin allocating wrapper over KNearestInto.
  Result<std::vector<std::pair<Dist, Vertex>>> KNearest(
      Vertex source, std::span<const Vertex> candidates, size_t k) const;

  // --- Route unpacking (docs/api.md "Routes") ---

  /// Reconstructs one shortest path s..t (s -> t for directed indexes):
  /// out->vertices is the full original-id sequence (s first, t last; the
  /// single vertex for s == t; empty when unreachable) and out->weight the
  /// path weight, always equal to Distance(s, t). Answered from the index's
  /// route hints when it carries them; a hint-less index falls back to a
  /// bidirectional Dijkstra over the attached graph (AttachGraph /
  /// AttachDigraph), so old index files keep working. Errors:
  /// kInvalidArgument (out-of-range id), kFailedPrecondition (no hints and
  /// no attached graph).
  Status Route(Vertex s, Vertex t, RoutePath* out) const;

  /// Route() into a caller-owned span: writes the vertex sequence into
  /// out_vertices, the path weight into *weight, and returns the vertex
  /// count (0 when unreachable). The hot path performs no per-call heap
  /// allocation once its per-thread scratch is warm. A path longer than
  /// out_vertices fails with kInvalidArgument naming the required size
  /// (out_vertices is then untouched).
  Result<size_t> RouteInto(Vertex s, Vertex t, std::span<Vertex> out_vertices,
                           Dist* weight) const;

  /// Up to k alternative routes s..t, sorted ascending by weight; the first
  /// is Route's shortest path. Alternatives route via the other separator
  /// hubs of the pair's LCA level, deduped plateaux-style, so they need
  /// route hints — a hint-less index with an attached graph degrades to the
  /// single fallback shortest path. k == 0 or an unreachable pair is an
  /// empty result, not an error. Error contract as Route.
  Result<std::vector<RoutePath>> Routes(Vertex s, Vertex t, size_t k) const;

  // --- Zero-copy request/response surface (hc2l/query.h) ---
  // Span-writing forms of the bulk queries: results land in caller-owned
  // memory and the hot path performs no per-call heap allocation once its
  // per-thread scratch is warm. Bit-identical distances to the vector
  // methods above (which wrap these).

  /// Executes `request` sequentially on the calling thread (Router ignores
  /// QueryOptions::num_threads — it is a cap, and sequential execution
  /// satisfies every cap; use ThreadedRouter::Execute to parallelize).
  /// Shape contract and deadline semantics: hc2l/query.h. Errors:
  /// kInvalidArgument (shape mismatch, out-of-range id under the kError
  /// policy), kDeadlineExceeded.
  Result<QueryResponse> Execute(const QueryRequest& request,
                                const QueryOutput& out) const;

  /// Writes d(source, targets[i]) into out[i] for every i. out.size() must
  /// equal targets.size() exactly.
  Status BatchQueryInto(Vertex source, std::span<const Vertex> targets,
                        std::span<Dist> out) const;

  /// Writes the row-major matrix out[i * targets.size() + j] =
  /// d(sources[i], targets[j]). out.size() must equal
  /// sources.size() * targets.size() exactly.
  Status DistanceMatrixInto(std::span<const Vertex> sources,
                            std::span<const Vertex> targets,
                            std::span<Dist> out) const;

  /// K-nearest into parallel caller-owned spans (out_dists[i],
  /// out_vertices[i] is the i-th neighbor). Both spans must have equal size
  /// >= min(k, candidates.size()); returns how many slots were written
  /// (fewer when candidates are unreachable; 0 for k == 0 or no
  /// candidates — an empty result, not an error).
  Result<size_t> KNearestInto(Vertex source,
                              std::span<const Vertex> candidates, size_t k,
                              std::span<Dist> out_dists,
                              std::span<Vertex> out_vertices) const;

  /// Dynamic weight updates (Section 5.4, undirected only): refreshes every
  /// distance value for a graph with the SAME topology but changed weights,
  /// reusing the stored hierarchy — much faster than Build. num_threads
  /// parallelizes the per-level label recomputation (0 = all hardware
  /// threads). Errors: kFailedPrecondition (directed index),
  /// kInvalidArgument (vertex count or pendant-tree structure differs) —
  /// detected before any state changes, so the index stays valid on
  /// failure.
  Status RebuildLabels(const Graph& updated, bool tail_pruning = true,
                       uint32_t num_threads = 1);

  /// Attaches (or replaces) the graph copy UpdateWeights repairs against.
  /// Build(const Graph&) attaches automatically; an Open()ed router has no
  /// graph until one is attached (hc2ld's --graph flag does this). The graph
  /// must match the indexed topology — UpdateWeights validates what it can
  /// cheaply detect and fails without touching the serving index otherwise.
  void AttachGraph(Graph graph);

  /// True when a graph is attached (Build(const Graph&) or AttachGraph).
  bool HasGraph() const;

  /// Attaches (or replaces) the digraph copy that hint-less directed
  /// indexes unpack routes against (the Route fallback). Build(const
  /// Digraph&) does NOT attach automatically — hint-carrying indexes (the
  /// default) never need the copy.
  void AttachDigraph(Digraph digraph);

  /// True when a digraph is attached.
  bool HasDigraph() const;

  /// Incremental weight update (Section 5.4 under live traffic, undirected
  /// only): applies `deltas` — existing edges taking new positive weights —
  /// to a copy of the attached graph and repairs a CLONE of the index
  /// (Hc2lIndex::RepairLabels: only subtrees whose separators cover a
  /// changed edge are recomputed; bit-identical to a full rebuild). This
  /// router keeps serving unchanged throughout; on success the returned
  /// router carries the repaired index plus the updated graph, so chained
  /// updates stay scoped. The copy-on-repair primitive under the server's
  /// `update_weights` wire verb. Errors: kFailedPrecondition (directed
  /// index, or no graph attached), kInvalidArgument (a delta names a
  /// non-edge or a zero weight), kOutOfRange (a repaired distance exceeds
  /// the 2^31 label encoding) — all leave this router untouched.
  Result<Router> UpdateWeights(std::span<const EdgeDelta> deltas,
                               bool tail_pruning = true,
                               uint32_t num_threads = 1) const;

  /// A parallel bulk-query handle routing through the shard-per-core query
  /// engine (docs/query_engine.md). The handle borrows this Router; results
  /// are bit-identical to the sequential methods for every thread count.
  Result<ThreadedRouter> WithThreads(uint32_t num_threads) const;
  Result<ThreadedRouter> WithThreads(const ParallelOptions& options) const;

 private:
  friend class ThreadedRouter;
  struct Impl;
  explicit Router(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Parallel bulk queries over a borrowed Router (see Router::WithThreads).
/// All methods are const and safe to call concurrently from several caller
/// threads. Do not outlive (or move) the Router it was created from.
class ThreadedRouter {
 public:
  ThreadedRouter(ThreadedRouter&&) noexcept;
  ThreadedRouter& operator=(ThreadedRouter&&) noexcept;
  ~ThreadedRouter();

  /// Total participating threads (>= 1).
  uint32_t NumThreads() const;

  /// out[i] = d(pairs[i].first, pairs[i].second), sharded across the pool.
  Result<std::vector<Dist>> PointQueries(
      std::span<const std::pair<Vertex, Vertex>> pairs) const;

  /// One-to-many, targets sharded across the pool.
  Result<std::vector<Dist>> BatchQuery(Vertex source,
                                       std::span<const Vertex> targets) const;

  /// Many-to-many, sources sharded, target resolution hoisted and tiled.
  Result<std::vector<std::vector<Dist>>> DistanceMatrix(
      std::span<const Vertex> sources, std::span<const Vertex> targets) const;

  /// K nearest with parallel distance computation and deterministic
  /// sequential selection. k == 0 or an empty candidate set is an empty
  /// result, not an error.
  Result<std::vector<std::pair<Dist, Vertex>>> KNearest(
      Vertex source, std::span<const Vertex> candidates, size_t k) const;

  // --- Zero-copy request/response surface (hc2l/query.h) ---
  // Same contracts as the Router forms; execution shards over the borrowed
  // Router's query engine. QueryOptions::num_threads caps the shards in
  // flight per request (1 = inline on the caller); results are bit-identical
  // to the sequential forms for every cap.

  /// Executes `request` over the query engine. Errors: kInvalidArgument,
  /// kDeadlineExceeded (see hc2l/query.h).
  Result<QueryResponse> Execute(const QueryRequest& request,
                                const QueryOutput& out) const;

  /// Writes d(source, targets[i]) into out[i]; out.size() must equal
  /// targets.size() exactly.
  Status BatchQueryInto(Vertex source, std::span<const Vertex> targets,
                        std::span<Dist> out) const;

  /// Row-major many-to-many; out.size() must equal
  /// sources.size() * targets.size() exactly.
  Status DistanceMatrixInto(std::span<const Vertex> sources,
                            std::span<const Vertex> targets,
                            std::span<Dist> out) const;

  /// K-nearest into parallel spans of equal size >=
  /// min(k, candidates.size()); returns the number of slots written.
  Result<size_t> KNearestInto(Vertex source,
                              std::span<const Vertex> candidates, size_t k,
                              std::span<Dist> out_dists,
                              std::span<Vertex> out_vertices) const;

 private:
  friend class Router;
  struct Impl;
  explicit ThreadedRouter(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace hc2l

#endif  // HC2L_PUBLIC_ROUTER_H_
