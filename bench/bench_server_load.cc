// Server load bench: closed-loop multi-connection clients over real TCP
// against an in-process QueryServer, measuring end-to-end serving
// throughput and latency through the epoll reactor.
//
// Three phases:
//  - point: N connections, each pipelining bursts of single-pair point
//    requests, once with request coalescing (the reactor merges the staged
//    lines of a burst — and of concurrently ready connections — into one
//    engine batch) and once with --no-coalesce semantics. The headline
//    number is the throughput ratio between the two runs: it is a property
//    of the serving path, not of the machine, so check_bench.py gates it on
//    every runner (floor 1.0 — coalescing must never LOSE throughput).
//  - batch: the same closed loop with 8-target batch requests, depth 1.
//  - matrix: one connection requesting a 100x100 matrix monolithically and
//    then as a chunked stream ("stream":true), timing both round trips.
//
// The numbers are merged into BENCH_query.json as the "server_load"
// section (machine-matched absolutes + the always-on coalesce-ratio floor).
// Like "large_graph", the merge splices BEFORE the "update_latency"/
// "parallel" markers; run it AFTER bench_large_graph, whose own merge
// truncates forward from its marker.

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "benchsupport/table_printer.h"
#include "common/timer.h"
#include "graph/road_network_generator.h"
#include "hc2l/hc2l.h"
#include "hc2l/server.h"
#include "server/wire.h"

namespace {

using namespace hc2l;

/// Deterministic per-thread pair stream (splitmix64); the same seeds are
/// replayed in the coalesced and uncoalesced runs so both serve the exact
/// same request sequence.
struct PairStream {
  uint64_t state;
  size_t n;
  explicit PairStream(uint64_t seed, size_t num_vertices)
      : state(seed), n(num_vertices) {}
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  uint32_t Vertex() { return static_cast<uint32_t>(Next() % n); }
};

int ConnectTo(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until `lines` newline characters have arrived. Returns false on a
/// closed connection.
bool ReadLines(int fd, size_t lines, std::string* buf) {
  size_t seen = 0;
  size_t scanned = 0;
  for (;;) {
    for (; scanned < buf->size(); ++scanned) {
      if ((*buf)[scanned] == '\n' && ++seen == lines) return true;
    }
    char chunk[1 << 16];
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf->append(chunk, static_cast<size_t>(n));
  }
}

struct PhaseResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t requests = 0;
};

double PercentileUs(std::vector<double>* latencies_ns, double q) {
  if (latencies_ns->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(latencies_ns->size() - 1));
  std::nth_element(latencies_ns->begin(), latencies_ns->begin() + idx,
                   latencies_ns->end());
  return (*latencies_ns)[idx] / 1e3;
}

/// Closed-loop phase: `connections` client threads, each sending `bursts`
/// pipelined groups of `depth` request lines (from `make_line`) and reading
/// the matching `depth` response lines before the next group. Latency is
/// per burst; qps counts individual requests.
PhaseResult RunClosedLoop(uint16_t port, size_t connections, size_t bursts,
                          size_t depth, size_t num_vertices,
                          std::string (*make_line)(PairStream*)) {
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> failed{false};
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      const int fd = ConnectTo(port);
      if (fd < 0) {
        failed.store(true);
        ready.fetch_add(1);
        return;
      }
      latencies[c].reserve(bursts);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      PairStream pairs(0x5eed0000 + c, num_vertices);
      std::string request;
      std::string response;
      for (size_t b = 0; b < bursts && !failed.load(); ++b) {
        request.clear();
        for (size_t d = 0; d < depth; ++d) request += make_line(&pairs);
        response.clear();
        Timer timer;
        if (!SendAll(fd, request) || !ReadLines(fd, depth, &response)) {
          failed.store(true);
          break;
        }
        latencies[c].push_back(timer.Seconds() * 1e9);
        if (response.compare(0, 10, "{\"ok\":true") != 0) failed.store(true);
      }
      close(fd);
    });
  }
  while (ready.load() < connections) {
  }
  Timer wall;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double seconds = wall.Seconds();
  if (failed.load()) {
    std::fprintf(stderr, "FATAL: a load connection failed\n");
    std::exit(1);
  }
  PhaseResult result;
  std::vector<double> all;
  for (auto& per_conn : latencies) {
    result.requests += per_conn.size() * depth;
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  result.qps = seconds > 0 ? static_cast<double>(result.requests) / seconds
                           : 0.0;
  result.p50_us = PercentileUs(&all, 0.50);
  result.p99_us = PercentileUs(&all, 0.99);
  return result;
}

std::string PointLine(PairStream* pairs) {
  char line[96];
  std::snprintf(line, sizeof(line),
                "{\"op\":\"point\",\"sources\":[%u],\"targets\":[%u]}\n",
                pairs->Vertex(), pairs->Vertex());
  return line;
}

std::string BatchLine(PairStream* pairs) {
  std::string line = "{\"op\":\"batch\",\"source\":" +
                     std::to_string(pairs->Vertex()) + ",\"targets\":[";
  for (int t = 0; t < 8; ++t) {
    if (t > 0) line += ',';
    line += std::to_string(pairs->Vertex());
  }
  line += "]}\n";
  return line;
}

/// One matrix request round trip in milliseconds (best of `reps`). With
/// `stream` the response arrives as header + chunk frames + trailer and is
/// reassembled client-side; the reassembled entry count is verified.
double MeasureMatrixMs(uint16_t port, size_t side, size_t num_vertices,
                       bool stream, int reps) {
  const int fd = ConnectTo(port);
  if (fd < 0) {
    std::fprintf(stderr, "FATAL: matrix connect failed\n");
    std::exit(1);
  }
  PairStream pairs(0x3a7, num_vertices);
  std::string request = "{\"op\":\"matrix\",\"sources\":[";
  for (size_t i = 0; i < side; ++i) {
    if (i > 0) request += ',';
    request += std::to_string(pairs.Vertex());
  }
  request += "],\"targets\":[";
  for (size_t i = 0; i < side; ++i) {
    if (i > 0) request += ',';
    request += std::to_string(pairs.Vertex());
  }
  request += stream ? "],\"stream\":true}\n" : "]}\n";

  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::string response;
    Timer timer;
    if (!SendAll(fd, request)) {
      std::fprintf(stderr, "FATAL: matrix send failed\n");
      std::exit(1);
    }
    if (stream) {
      StreamReassembler reassembler;
      size_t start = 0;
      while (!reassembler.done()) {
        size_t nl;
        while ((nl = response.find('\n', start)) == std::string::npos) {
          char chunk[1 << 16];
          const ssize_t r = recv(fd, chunk, sizeof(chunk), 0);
          if (r < 0 && errno == EINTR) continue;
          if (r <= 0) {
            std::fprintf(stderr, "FATAL: stream closed early\n");
            std::exit(1);
          }
          response.append(chunk, static_cast<size_t>(r));
        }
        const Status fed = reassembler.Feed(
            std::string_view(response).substr(start, nl - start));
        if (!fed.ok()) {
          std::fprintf(stderr, "FATAL: stream frame rejected: %s\n",
                       fed.ToString().c_str());
          std::exit(1);
        }
        start = nl + 1;
      }
      if (reassembler.distances().size() != side * side) {
        std::fprintf(stderr, "FATAL: stream reassembled %zu of %zu entries\n",
                     reassembler.distances().size(), side * side);
        std::exit(1);
      }
    } else if (!ReadLines(fd, 1, &response) ||
               response.compare(0, 10, "{\"ok\":true") != 0) {
      std::fprintf(stderr, "FATAL: matrix response: %.80s\n",
                   response.c_str());
      std::exit(1);
    }
    const double ms = timer.Seconds() * 1e3;
    if (rep == 0 || ms < best) best = ms;
  }
  close(fd);
  return best;
}

/// Splices the "server_load" section into BENCH_query.json before the
/// "update_latency"/"parallel" markers (their merges truncate forward and
/// would destroy anything placed after them).
void MergeServerLoadSection(const std::string& path,
                            const std::string& section) {
  std::string existing;
  if (std::FILE* f = std::fopen(path.c_str(), "rb"); f != nullptr) {
    char buf[4096];
    size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      existing.append(buf, got);
    }
    std::fclose(f);
  }
  const std::string kMarker = ",\n  \"server_load\":";
  const std::string kUpdateMarker = ",\n  \"update_latency\":";
  const std::string kParallelMarker = ",\n  \"parallel\":";
  if (const size_t m = existing.find(kMarker); m != std::string::npos) {
    size_t next = existing.find(kUpdateMarker, m);
    if (next == std::string::npos) {
      next = existing.find(kParallelMarker, m);
    }
    existing = existing.substr(0, m) +
               (next != std::string::npos ? existing.substr(next) : "\n}\n");
  }
  std::string out;
  size_t insert = existing.find(kUpdateMarker);
  if (insert == std::string::npos) insert = existing.find(kParallelMarker);
  const size_t close = existing.rfind('}');
  if (close == std::string::npos) {
    out = "{\n  \"bench\": \"server_load\"" + section + "\n}\n";
  } else if (insert != std::string::npos) {
    out = existing.substr(0, insert) + section + existing.substr(insert);
  } else {
    out = existing.substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
    out += section + "\n}\n";
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

}  // namespace

int main() {
  const bool fast = std::getenv("HC2L_BENCH_FAST") != nullptr;
  const size_t kConnections = fast ? 8 : 16;
  const size_t kBursts = fast ? 60 : 200;
  const size_t kDepth = 16;
  const size_t kMatrixSide = 100;

  RoadNetworkOptions opt;
  opt.rows = 48;
  opt.cols = 48;
  opt.seed = 2026;
  const Graph g = GenerateRoadNetwork(opt);
  const size_t n = g.NumVertices();

  std::printf("=== Server load: reactor throughput over real TCP ===\n");
  std::printf("graph: %zu vertices; %zu connections x %zu bursts x depth "
              "%zu\n\n",
              n, kConnections, kBursts, kDepth);

  BuildOptions build;
  build.num_threads = 0;
  Result<Router> router = Router::Build(g, build);
  if (!router.ok()) {
    std::fprintf(stderr, "FATAL: build failed\n");
    return 1;
  }

  // A deliberately small serving configuration: 2 reactor workers and a
  // 2-thread engine make per-request dispatch the bottleneck, which is
  // exactly the overhead coalescing amortizes.
  const auto run_mode = [&](bool coalesce) {
    ServerOptions options;
    options.port = 0;
    options.num_threads = 2;
    options.reactor_threads = 2;
    options.coalesce = coalesce;
    Result<QueryServer> server = QueryServer::Start(*router, options);
    if (!server.ok()) {
      std::fprintf(stderr, "FATAL: server start failed: %s\n",
                   server.status().ToString().c_str());
      std::exit(1);
    }
    PhaseResult best;
    for (int rep = 0; rep < 3; ++rep) {
      const PhaseResult r = RunClosedLoop(server->port(), kConnections,
                                          kBursts, kDepth, n, PointLine);
      if (rep == 0 || r.qps > best.qps) best = r;
    }
    if (coalesce) {
      const QueryServer::Stats stats = server->stats();
      if (stats.requests_coalesced == 0 || stats.coalesced_batches == 0 ||
          stats.coalesced_batches >= stats.requests_coalesced) {
        std::fprintf(stderr,
                     "FATAL: coalescing did not engage (coalesced=%llu "
                     "batches=%llu)\n",
                     static_cast<unsigned long long>(stats.requests_coalesced),
                     static_cast<unsigned long long>(
                         stats.coalesced_batches));
        std::exit(1);
      }
    }
    server->Stop();
    return best;
  };

  const PhaseResult uncoalesced = run_mode(false);
  const PhaseResult coalesced = run_mode(true);
  const double ratio =
      uncoalesced.qps > 0 ? coalesced.qps / uncoalesced.qps : 0.0;

  // Batch and matrix phases on one coalescing server.
  ServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  options.reactor_threads = 2;
  Result<QueryServer> server = QueryServer::Start(*router, options);
  if (!server.ok()) {
    std::fprintf(stderr, "FATAL: server start failed\n");
    return 1;
  }
  const PhaseResult batch = RunClosedLoop(server->port(), kConnections,
                                          kBursts, 1, n, BatchLine);
  const double matrix_ms =
      MeasureMatrixMs(server->port(), kMatrixSide, n, false, 3);
  const double stream_ms =
      MeasureMatrixMs(server->port(), kMatrixSide, n, true, 3);
  server->Stop();

  TablePrinter table({"Metric", "Value"});
  table.AddRow({"point qps, coalesced", FormatDouble(coalesced.qps, 0)});
  table.AddRow({"point qps, uncoalesced", FormatDouble(uncoalesced.qps, 0)});
  table.AddRow({"coalesce ratio", FormatDouble(ratio, 2) + "x"});
  table.AddRow({"burst p50 [us]", FormatDouble(coalesced.p50_us, 1)});
  table.AddRow({"burst p99 [us]", FormatDouble(coalesced.p99_us, 1)});
  table.AddRow({"batch qps (8 targets)", FormatDouble(batch.qps, 0)});
  table.AddRow({"matrix 100x100 [ms]", FormatDouble(matrix_ms, 3)});
  table.AddRow({"matrix 100x100 streamed [ms]", FormatDouble(stream_ms, 3)});
  table.Print();

  char section[768];
  std::snprintf(
      section, sizeof(section),
      ",\n  \"server_load\": {\n"
      "    \"api\": \"router\",\n"
      "    \"connections\": %zu,\n"
      "    \"pipeline_depth\": %zu,\n"
      "    \"point_requests\": %llu,\n"
      "    \"qps_coalesced\": %.1f,\n"
      "    \"qps_uncoalesced\": %.1f,\n"
      "    \"coalesce_ratio\": %.3f,\n"
      "    \"burst_p50_us\": %.1f,\n"
      "    \"burst_p99_us\": %.1f,\n"
      "    \"batch_qps\": %.1f,\n"
      "    \"matrix_ms\": %.3f,\n"
      "    \"stream_matrix_ms\": %.3f\n  }",
      kConnections, kDepth,
      static_cast<unsigned long long>(coalesced.requests), coalesced.qps,
      uncoalesced.qps, ratio, coalesced.p50_us, coalesced.p99_us, batch.qps,
      matrix_ms, stream_ms);
  const char* json = std::getenv("HC2L_BENCH_JSON");
  const std::string path = json != nullptr ? json : "BENCH_query.json";
  MergeServerLoadSection(path, section);
  std::printf("merged server_load section into %s\n", path.c_str());
  return 0;
}
