#ifndef HC2L_BENCH_BENCH_TABLE_COMMON_H_
#define HC2L_BENCH_BENCH_TABLE_COMMON_H_

// Shared driver for Tables 2 and 4 (same layout, different edge-weight
// semantics) and Table 3.

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "benchsupport/workload.h"

namespace hc2l {

/// Runs the full method comparison over every selected dataset in `mode` and
/// prints the paper's Table 2/4 layout: query time, labelling size,
/// construction time per method (plus HC2L_p construction).
inline void RunMainComparisonTable(WeightMode mode, const char* title) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "(scale: HC2L_BENCH_SCALE=%s; %zu queries/method; paper shape: HC2L "
      "fastest queries, smallest or near-smallest labels)\n\n",
      std::getenv("HC2L_BENCH_SCALE") ? std::getenv("HC2L_BENCH_SCALE")
                                      : "small",
      BenchQueryCount());
  TablePrinter table({"Dataset", "Q HC2L[us]", "Q H2H[us]", "Q PHL[us]",
                      "Q HL[us]", "S HC2L", "S H2H", "S PHL", "S HL",
                      "C HC2L[s]", "C HC2Lp[s]", "C H2H[s]", "C PHL[s]",
                      "C HL[s]"});
  for (const DatasetSpec& spec : SelectedDatasets(mode)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    EvaluationDriver driver(g, Hc2lOptions{}, /*build_baselines=*/true);
    const auto pairs =
        UniformRandomPairs(g.NumVertices(), BenchQueryCount(), 42);
    driver.MeasureQueries(pairs);
    const DatasetEvaluation& e = driver.Result();
    table.AddRow({spec.name,
                  FormatMicros(e.methods[0].avg_query_micros),
                  FormatMicros(e.methods[1].avg_query_micros),
                  FormatMicros(e.methods[2].avg_query_micros),
                  FormatMicros(e.methods[3].avg_query_micros),
                  FormatBytes(e.methods[0].index_bytes),
                  FormatBytes(e.methods[1].index_bytes),
                  FormatBytes(e.methods[2].index_bytes),
                  FormatBytes(e.methods[3].index_bytes),
                  FormatSeconds(e.methods[0].build_seconds),
                  FormatSeconds(e.hc2lp_build_seconds),
                  FormatSeconds(e.methods[1].build_seconds),
                  FormatSeconds(e.methods[2].build_seconds),
                  FormatSeconds(e.methods[3].build_seconds)});
    std::fflush(stdout);
  }
  table.Print();
}

}  // namespace hc2l

#endif  // HC2L_BENCH_BENCH_TABLE_COMMON_H_
