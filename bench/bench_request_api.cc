// Span vs vector on the facade's bulk-query paths, plus the PR's hard
// promise: the span-output hot path (BatchQueryInto / DistanceMatrixInto /
// Execute for batch and matrix requests) performs ZERO heap allocations in
// steady state. This binary both measures the two paths and enforces the
// allocation claim with a global operator-new hook — it exits non-zero if a
// warm span-path call allocates, so CI can run it as a gate.
//
// Plain main() driver (no google-benchmark dependency), same fixture family
// as bench_micro_query: a synthetic road-network grid.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "hc2l/hc2l.h"

// ------------------------------------------------------ allocation hook ---
// Replacing these in any TU hooks every new/delete in the binary, including
// the statically linked library. Counting is toggled around the measured
// regions only.

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<bool> g_alloc_counting{false};

inline void CountAlloc() {
  if (g_alloc_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

void* operator new(std::size_t size) {
  CountAlloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) std::abort();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  CountAlloc();
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded);
  if (p == nullptr) std::abort();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hc2l {
namespace {

constexpr size_t kBatchTargets = 4096;
constexpr size_t kMatrixSources = 64;
constexpr size_t kMatrixTargets = 512;

/// Runs fn() `reps` times; returns (ns per op, allocations per call) where
/// the op count is reps * ops_per_call.
struct Measured {
  double ns_per_op;
  double allocs_per_call;
};
template <typename Fn>
Measured Measure(size_t reps, size_t ops_per_call, const Fn& fn) {
  fn();  // warm every scratch buffer / vector capacity before counting
  fn();
  g_alloc_count.store(0);
  g_alloc_counting.store(true);
  Timer timer;
  for (size_t r = 0; r < reps; ++r) fn();
  const double seconds = timer.Seconds();
  g_alloc_counting.store(false);
  const double total_ops =
      static_cast<double>(reps) * static_cast<double>(ops_per_call);
  return {seconds * 1e9 / total_ops,
          static_cast<double>(g_alloc_count.load()) /
              static_cast<double>(reps)};
}

int Run() {
  RoadNetworkOptions opt;
  opt.rows = 48;
  opt.cols = 48;
  opt.seed = 2026;
  const Graph g = GenerateRoadNetwork(opt);
  Result<Router> router = Router::Build(g);
  if (!router.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 router.status().ToString().c_str());
    return 1;
  }
  const Vertex n = static_cast<Vertex>(router->NumVertices());
  Rng rng(7);
  std::vector<Vertex> targets(kBatchTargets);
  for (Vertex& t : targets) t = static_cast<Vertex>(rng.Below(n));
  std::vector<Vertex> msources(kMatrixSources);
  for (Vertex& s : msources) s = static_cast<Vertex>(rng.Below(n));
  std::vector<Vertex> mtargets(kMatrixTargets);
  for (Vertex& t : mtargets) t = static_cast<Vertex>(rng.Below(n));
  const Vertex source = targets[0];

  std::printf("bench_request_api: %zu-vertex grid, batch %zu targets, "
              "matrix %zux%zu\n",
              static_cast<size_t>(n), kBatchTargets, kMatrixSources,
              kMatrixTargets);

  volatile Dist sink = 0;

  // --- one-to-many batch: vector vs span vs request ---
  constexpr size_t kBatchReps = 400;
  const Measured batch_vec = Measure(kBatchReps, kBatchTargets, [&] {
    const Result<std::vector<Dist>> out = router->BatchQuery(source, targets);
    sink = sink + (*out)[0];
  });
  std::vector<Dist> batch_out(kBatchTargets);
  const Measured batch_span = Measure(kBatchReps, kBatchTargets, [&] {
    if (!router->BatchQueryInto(source, targets, batch_out).ok()) std::abort();
    sink = sink + batch_out[0];
  });
  QueryRequest batch_req;
  batch_req.kind = QueryKind::kPointBatch;
  batch_req.sources = std::span<const Vertex>(&source, 1);
  batch_req.targets = targets;
  const Measured batch_exec = Measure(kBatchReps, kBatchTargets, [&] {
    const Result<QueryResponse> r =
        router->Execute(batch_req, QueryOutput{batch_out, {}});
    if (!r.ok()) std::abort();
    sink = sink + batch_out[0];
  });

  // --- many-to-many matrix: vector vs span vs request ---
  constexpr size_t kMatrixReps = 60;
  constexpr size_t kMatrixOps = kMatrixSources * kMatrixTargets;
  const Measured matrix_vec = Measure(kMatrixReps, kMatrixOps, [&] {
    const auto out = router->DistanceMatrix(msources, mtargets);
    sink = sink + (*out)[0][0];
  });
  std::vector<Dist> matrix_out(kMatrixOps);
  const Measured matrix_span = Measure(kMatrixReps, kMatrixOps, [&] {
    if (!router->DistanceMatrixInto(msources, mtargets, matrix_out).ok()) {
      std::abort();
    }
    sink = sink + matrix_out[0];
  });
  QueryRequest matrix_req;
  matrix_req.kind = QueryKind::kMatrix;
  matrix_req.sources = msources;
  matrix_req.targets = mtargets;
  const Measured matrix_exec = Measure(kMatrixReps, kMatrixOps, [&] {
    const Result<QueryResponse> r =
        router->Execute(matrix_req, QueryOutput{matrix_out, {}});
    if (!r.ok()) std::abort();
    sink = sink + matrix_out[0];
  });

  // --- k-nearest through the span path (reported, not gated) ---
  constexpr size_t kKnnReps = 400;
  std::vector<Dist> knn_d(16);
  std::vector<Vertex> knn_v(16);
  const Measured knn_span = Measure(kKnnReps, kBatchTargets, [&] {
    const Result<size_t> w =
        router->KNearestInto(source, targets, 16, knn_d, knn_v);
    if (!w.ok()) std::abort();
    sink = sink + knn_d[0];
  });

  std::printf(
      "batch   vector: %7.2f ns/target  %6.1f allocs/call\n"
      "batch   span:   %7.2f ns/target  %6.1f allocs/call\n"
      "batch   request:%7.2f ns/target  %6.1f allocs/call\n"
      "matrix  vector: %7.2f ns/pair    %6.1f allocs/call\n"
      "matrix  span:   %7.2f ns/pair    %6.1f allocs/call\n"
      "matrix  request:%7.2f ns/pair    %6.1f allocs/call\n"
      "knn     span:   %7.2f ns/cand    %6.1f allocs/call\n",
      batch_vec.ns_per_op, batch_vec.allocs_per_call, batch_span.ns_per_op,
      batch_span.allocs_per_call, batch_exec.ns_per_op,
      batch_exec.allocs_per_call, matrix_vec.ns_per_op,
      matrix_vec.allocs_per_call, matrix_span.ns_per_op,
      matrix_span.allocs_per_call, matrix_exec.ns_per_op,
      matrix_exec.allocs_per_call, knn_span.ns_per_op,
      knn_span.allocs_per_call);

  // --- the gate: warm span/request batch and matrix paths allocate ZERO ---
  const double gated = batch_span.allocs_per_call +
                       batch_exec.allocs_per_call +
                       matrix_span.allocs_per_call +
                       matrix_exec.allocs_per_call;
  if (gated > 0.0) {
    std::printf("zero-allocation gate: FAIL (%.1f allocations per span-path "
                "call; expected 0)\n",
                gated);
    return 1;
  }
  std::printf("zero-allocation gate: PASS (0 allocations across %zu warm "
              "span-path calls)\n",
              2 * (kBatchReps + kMatrixReps));
  return 0;
}

}  // namespace
}  // namespace hc2l

int main() { return hc2l::Run(); }
