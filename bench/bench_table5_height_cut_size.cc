// Reproduces Table 5: tree height and maximum cut size / width, HC2L's
// balanced tree hierarchy vs H2H's minimum-degree-elimination tree
// decomposition (beta = 0.2, distance weights). HC2L runs through the
// public facade; H2H stays a baseline-internal class.

#include <cstdio>

#include "baselines/h2h.h"
#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "hc2l/hc2l.h"

int main() {
  using namespace hc2l;
  std::printf("=== Table 5: tree height and max cut size/width ===\n\n");
  TablePrinter table({"Dataset", "Height HC2L", "Height H2H", "MaxCut HC2L",
                      "Width H2H"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kDistance)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    // beta = 0.2 as in the paper (the BuildOptions default).
    const Result<Router> index = Router::Build(g, BuildOptions{});
    if (!index.ok()) return 1;
    const H2hIndex h2h(g);
    const IndexInfo info = index->Info();
    table.AddRow({spec.name, std::to_string(info.tree_height),
                  std::to_string(h2h.TreeHeight()),
                  std::to_string(info.max_cut_size),
                  std::to_string(h2h.TreeWidth())});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: HC2L heights are ~10-80x smaller than H2H "
      "heights and HC2L max cuts are several times smaller than H2H "
      "widths.\n");
  return 0;
}
