// Google-benchmark micro measurements: per-query latency of every method on
// one mid-size dataset, the O(1) LCA-level primitive, and the SIMD vs scalar
// min-plus kernel. Complements the table benches with statistically robust
// per-op numbers.
//
// After the google-benchmark run, a machine-readable snapshot is written to
// BENCH_query.json (override with HC2L_BENCH_JSON=<path>) so the perf
// trajectory — ns/query, hubs scanned, label bytes — is tracked PR over PR.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/contraction_hierarchies.h"
#include "baselines/h2h.h"
#include "baselines/hub_labelling.h"
#include "baselines/pruned_highway_labelling.h"
#include "benchsupport/workload.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/hc2l.h"
#include "graph/road_network_generator.h"
#include "hierarchy/tree_code.h"
#include "search/dijkstra.h"

namespace hc2l {
namespace {

// One shared fixture graph (built lazily, reused by every benchmark).
const Graph& BenchGraph() {
  static const Graph* graph = [] {
    RoadNetworkOptions opt;
    opt.rows = 48;
    opt.cols = 48;
    opt.seed = 2026;
    return new Graph(GenerateRoadNetwork(opt));
  }();
  return *graph;
}

const std::vector<QueryPair>& BenchPairs() {
  static const auto* pairs = new std::vector<QueryPair>(
      UniformRandomPairs(BenchGraph().NumVertices(), 4096, 9));
  return *pairs;
}

template <typename Index>
void RunQueries(benchmark::State& state, const Index& index) {
  const auto& pairs = BenchPairs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i];
    benchmark::DoNotOptimize(index.Query(s, t));
    i = (i + 1) & (pairs.size() - 1);
  }
}

const Hc2lIndex& BenchIndex() {
  static const auto* index =
      new Hc2lIndex(Hc2lIndex::Build(BenchGraph(), Hc2lOptions{}));
  return *index;
}

void BM_Hc2lQuery(benchmark::State& state) {
  RunQueries(state, BenchIndex());
}
BENCHMARK(BM_Hc2lQuery);

void BM_Hc2lBatchQuery(benchmark::State& state) {
  // One-to-many fast path: per-target cost with the source side hoisted and
  // targets grouped by LCA level.
  const auto& pairs = BenchPairs();
  std::vector<Vertex> targets;
  targets.reserve(pairs.size());
  for (const auto& [s, t] : pairs) targets.push_back(t);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BenchIndex().BatchQuery(pairs[i].first, targets));
    // Plain modulo: one per 4096-target batch, and unlike a pow2 mask it
    // stays a full cycle if the pair count ever changes.
    i = (i + 1) % pairs.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(targets.size()));
}
BENCHMARK(BM_Hc2lBatchQuery);

/// Random label arrays for the kernel-only benches: finite values with
/// sentinels sprinkled in, padded per the arena invariant.
std::vector<uint32_t> KernelArray(size_t len, uint64_t seed) {
  std::vector<uint32_t> v(simd::PaddedLength(len), UINT32_MAX);
  Rng rng(seed);
  for (size_t i = 0; i < len; ++i) {
    v[i] = rng.Below(16) == 0 ? UINT32_MAX
                              : static_cast<uint32_t>(rng.Below(1 << 24));
  }
  return v;
}

void BM_MinPlusKernel(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const auto a = KernelArray(len, 1);
  const auto b = KernelArray(len, 2);
  for (auto _ : state) {
    // Launder the loop-invariant operands so the pure, inlined kernel call
    // cannot be hoisted out of the timing loop.
    const uint32_t* pa = a.data();
    const uint32_t* pb = b.data();
    benchmark::DoNotOptimize(pa);
    benchmark::DoNotOptimize(pb);
    benchmark::DoNotOptimize(simd::MinPlusPadded(pa, pb, len));
  }
}
BENCHMARK(BM_MinPlusKernel)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_MinPlusScalarRef(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const auto a = KernelArray(len, 1);
  const auto b = KernelArray(len, 2);
  for (auto _ : state) {
    const uint32_t* pa = a.data();
    const uint32_t* pb = b.data();
    benchmark::DoNotOptimize(pa);
    benchmark::DoNotOptimize(pb);
    benchmark::DoNotOptimize(simd::MinPlusScalar(pa, pb, len));
  }
}
BENCHMARK(BM_MinPlusScalarRef)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_H2hQuery(benchmark::State& state) {
  static const auto* index = new H2hIndex(BenchGraph());
  RunQueries(state, *index);
}
BENCHMARK(BM_H2hQuery);

void BM_PhlQuery(benchmark::State& state) {
  static const auto* index = new PrunedHighwayLabelling(BenchGraph());
  RunQueries(state, *index);
}
BENCHMARK(BM_PhlQuery);

void BM_HlQuery(benchmark::State& state) {
  static const auto* index = [] {
    ContractionHierarchies ch(BenchGraph());
    return new HubLabelling(BenchGraph(), ch.ImportanceOrder());
  }();
  RunQueries(state, *index);
}
BENCHMARK(BM_HlQuery);

void BM_ChQuery(benchmark::State& state) {
  static const auto* index = new ContractionHierarchies(BenchGraph());
  RunQueries(state, *index);
}
BENCHMARK(BM_ChQuery);

void BM_BidirectionalDijkstraQuery(benchmark::State& state) {
  static auto* bidi = new BidirectionalDijkstra(BenchGraph());
  const auto& pairs = BenchPairs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i];
    benchmark::DoNotOptimize(bidi->Query(s, t));
    i = (i + 1) & (pairs.size() - 1);
  }
}
BENCHMARK(BM_BidirectionalDijkstraQuery);

void BM_LcaLevelPrimitive(benchmark::State& state) {
  // The XOR + clz tree-code LCA (Lemma 4.21) in isolation.
  static const auto* index =
      new Hc2lIndex(Hc2lIndex::Build(BenchGraph(), Hc2lOptions{}));
  const auto& h = index->Hierarchy();
  const size_t n = index->Stats().num_core_vertices;
  size_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        h.LcaLevel(static_cast<Vertex>(i % n),
                   static_cast<Vertex>((i * 7919) % n)));
    ++i;
  }
}
BENCHMARK(BM_LcaLevelPrimitive);

/// Host name fingerprint; paired with the CPU model in the snapshot because
/// virtualized CPUs often report a generic model string ("Intel(R) Xeon(R)
/// Processor @ 2.10GHz") on very different physical hosts.
std::string HostName() {
  char name[256] = {0};
  if (gethostname(name, sizeof(name) - 1) != 0) return "unknown";
  return name[0] != '\0' ? name : "unknown";
}

/// CPU model fingerprint (from /proc/cpuinfo; "unknown" elsewhere). Stored
/// in the snapshot so tools/check_bench.py only compares absolute timings
/// measured on the same CPU model.
std::string CpuModel() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "unknown";
  char line[256];
  std::string model = "unknown";
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) == 0) {
      const char* colon = std::strchr(line, ':');
      if (colon != nullptr) {
        const char* value = colon + 1;
        while (*value == ' ' || *value == '\t') ++value;
        model = value;
        while (!model.empty() &&
               (model.back() == '\n' || model.back() == ' ')) {
          model.pop_back();
        }
        if (model.empty()) model = "unknown";
      }
      break;
    }
  }
  std::fclose(f);
  return model;
}

/// Times fn() (which must consume `ops` operations) and returns ns/op.
template <typename Fn>
double NsPerOp(size_t ops, const Fn& fn) {
  Timer timer;
  fn();
  return timer.Seconds() * 1e9 / static_cast<double>(ops);
}

/// Writes the machine-readable perf snapshot. Self-measured (not derived
/// from the google-benchmark run) so the numbers carry the exact workload
/// definition with them: uniform random pairs on the shared fixture graph.
void WriteBenchQueryJson(const char* path) {
  const Graph& g = BenchGraph();
  const Hc2lIndex& index = BenchIndex();
  const auto& pairs = BenchPairs();

  constexpr size_t kRounds = 200;  // 200 * 4096 pairs ≈ 0.8M queries
  const size_t num_queries = kRounds * pairs.size();
  const double ns_query = NsPerOp(num_queries, [&]() {
    Dist sink = 0;
    for (size_t r = 0; r < kRounds; ++r) {
      for (const auto& [s, t] : pairs) sink ^= index.Query(s, t);
    }
    benchmark::DoNotOptimize(sink);
  });

  std::vector<Vertex> targets;
  targets.reserve(pairs.size());
  for (const auto& [s, t] : pairs) targets.push_back(t);
  const double ns_batch_target = NsPerOp(num_queries, [&]() {
    for (size_t r = 0; r < kRounds; ++r) {
      benchmark::DoNotOptimize(
          index.BatchQuery(pairs[r % pairs.size()].first, targets));
    }
  });

  uint64_t hubs = 0;
  Dist sink = 0;
  for (const auto& [s, t] : pairs) sink ^= index.QueryCountingHubs(s, t, &hubs);
  benchmark::DoNotOptimize(sink);
  const double avg_hubs =
      static_cast<double>(hubs) / static_cast<double>(pairs.size());

  constexpr size_t kKernelLen = 128;
  constexpr size_t kKernelReps = 2'000'000;
  const auto ka = KernelArray(kKernelLen, 1);
  const auto kb = KernelArray(kKernelLen, 2);
  // The operand pointers are laundered through DoNotOptimize and memory is
  // clobbered each rep, so the loop-invariant kernel call cannot be hoisted.
  const auto time_kernel = [&](auto kernel) {
    return NsPerOp(kKernelReps, [&]() {
      uint32_t acc = 0;
      for (size_t r = 0; r < kKernelReps; ++r) {
        const uint32_t* pa = ka.data();
        const uint32_t* pb = kb.data();
        benchmark::DoNotOptimize(pa);
        benchmark::DoNotOptimize(pb);
        acc ^= kernel(pa, pb, kKernelLen);
        benchmark::ClobberMemory();
      }
      benchmark::DoNotOptimize(acc);
    });
  };
  const double ns_kernel = time_kernel(
      [](const uint32_t* a, const uint32_t* b, size_t len) {
        return simd::MinPlusPadded(a, b, len);
      });
  const double ns_kernel_scalar = time_kernel(
      [](const uint32_t* a, const uint32_t* b, size_t len) {
        return simd::MinPlusScalar(a, b, len);
      });

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"micro_query\",\n"
               "  \"kernel\": \"%s\",\n"
               "  \"cpu\": \"%s\",\n"
               "  \"host\": \"%s\",\n"
               "  \"graph\": {\"vertices\": %zu, \"edges\": %zu},\n"
               "  \"queries\": %zu,\n"
               "  \"ns_per_query\": %.2f,\n"
               "  \"ns_per_batch_target\": %.2f,\n"
               "  \"avg_hubs_scanned\": %.2f,\n"
               "  \"kernel_len%zu_ns\": {\"simd\": %.2f, \"scalar\": %.2f},\n"
               "  \"label_bytes_logical\": %llu,\n"
               "  \"label_bytes_resident\": %zu,\n"
               "  \"label_entries\": %llu\n"
               "}\n",
               simd::kKernelName, CpuModel().c_str(), HostName().c_str(),
               static_cast<size_t>(g.NumVertices()),
               static_cast<size_t>(g.NumEdges()), num_queries, ns_query,
               ns_batch_target, avg_hubs, kKernelLen, ns_kernel,
               ns_kernel_scalar,
               static_cast<unsigned long long>(index.Stats().label_bytes),
               index.LabelSizeBytes(),
               static_cast<unsigned long long>(index.Stats().label_entries));
  std::fclose(f);
  std::printf("wrote %s (%.2f ns/query, kernel %s)\n", path, ns_query,
              simd::kKernelName);
}

}  // namespace
}  // namespace hc2l

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  const char* json = std::getenv("HC2L_BENCH_JSON");
  hc2l::WriteBenchQueryJson(json != nullptr ? json : "BENCH_query.json");
  return 0;
}
