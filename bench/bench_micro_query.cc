// Google-benchmark micro measurements: per-query latency of every method on
// one mid-size dataset, plus the O(1) LCA-level primitive. Complements the
// table benches with statistically robust per-op numbers.

#include <benchmark/benchmark.h>

#include "baselines/contraction_hierarchies.h"
#include "baselines/h2h.h"
#include "baselines/hub_labelling.h"
#include "baselines/pruned_highway_labelling.h"
#include "benchsupport/workload.h"
#include "core/hc2l.h"
#include "graph/road_network_generator.h"
#include "hierarchy/tree_code.h"
#include "search/dijkstra.h"

namespace hc2l {
namespace {

// One shared fixture graph (built lazily, reused by every benchmark).
const Graph& BenchGraph() {
  static const Graph* graph = [] {
    RoadNetworkOptions opt;
    opt.rows = 48;
    opt.cols = 48;
    opt.seed = 2026;
    return new Graph(GenerateRoadNetwork(opt));
  }();
  return *graph;
}

const std::vector<QueryPair>& BenchPairs() {
  static const auto* pairs = new std::vector<QueryPair>(
      UniformRandomPairs(BenchGraph().NumVertices(), 4096, 9));
  return *pairs;
}

template <typename Index>
void RunQueries(benchmark::State& state, const Index& index) {
  const auto& pairs = BenchPairs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i];
    benchmark::DoNotOptimize(index.Query(s, t));
    i = (i + 1) & (pairs.size() - 1);
  }
}

void BM_Hc2lQuery(benchmark::State& state) {
  static const auto* index =
      new Hc2lIndex(Hc2lIndex::Build(BenchGraph(), Hc2lOptions{}));
  RunQueries(state, *index);
}
BENCHMARK(BM_Hc2lQuery);

void BM_H2hQuery(benchmark::State& state) {
  static const auto* index = new H2hIndex(BenchGraph());
  RunQueries(state, *index);
}
BENCHMARK(BM_H2hQuery);

void BM_PhlQuery(benchmark::State& state) {
  static const auto* index = new PrunedHighwayLabelling(BenchGraph());
  RunQueries(state, *index);
}
BENCHMARK(BM_PhlQuery);

void BM_HlQuery(benchmark::State& state) {
  static const auto* index = [] {
    ContractionHierarchies ch(BenchGraph());
    return new HubLabelling(BenchGraph(), ch.ImportanceOrder());
  }();
  RunQueries(state, *index);
}
BENCHMARK(BM_HlQuery);

void BM_ChQuery(benchmark::State& state) {
  static const auto* index = new ContractionHierarchies(BenchGraph());
  RunQueries(state, *index);
}
BENCHMARK(BM_ChQuery);

void BM_BidirectionalDijkstraQuery(benchmark::State& state) {
  static auto* bidi = new BidirectionalDijkstra(BenchGraph());
  const auto& pairs = BenchPairs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i];
    benchmark::DoNotOptimize(bidi->Query(s, t));
    i = (i + 1) & (pairs.size() - 1);
  }
}
BENCHMARK(BM_BidirectionalDijkstraQuery);

void BM_LcaLevelPrimitive(benchmark::State& state) {
  // The XOR + clz tree-code LCA (Lemma 4.21) in isolation.
  static const auto* index =
      new Hc2lIndex(Hc2lIndex::Build(BenchGraph(), Hc2lOptions{}));
  const auto& h = index->Hierarchy();
  const size_t n = index->Stats().num_core_vertices;
  size_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        h.LcaLevel(static_cast<Vertex>(i % n),
                   static_cast<Vertex>((i * 7919) % n)));
    ++i;
  }
}
BENCHMARK(BM_LcaLevelPrimitive);

}  // namespace
}  // namespace hc2l

BENCHMARK_MAIN();
