// Google-benchmark micro measurements: per-query latency of every method on
// one mid-size dataset, the O(1) LCA-level primitive, and the SIMD vs scalar
// min-plus kernel. Complements the table benches with statistically robust
// per-op numbers.
//
// After the google-benchmark run, a machine-readable snapshot is written to
// BENCH_query.json (override with HC2L_BENCH_JSON=<path>) so the perf
// trajectory — ns/query, hubs scanned, label bytes — is tracked PR over PR.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "baselines/contraction_hierarchies.h"
#include "baselines/h2h.h"
#include "baselines/hub_labelling.h"
#include "baselines/pruned_highway_labelling.h"
#include "benchsupport/workload.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/directed_hc2l.h"
#include "core/hc2l.h"
#include "graph/road_network_generator.h"
#include "hierarchy/tree_code.h"
#include "search/dijkstra.h"

namespace hc2l {
namespace {

// The snapshot tracks a multi-dataset trajectory: the mid-size grid every
// google-benchmark below runs on, plus a larger grid whose taller hierarchy
// and longer cut arrays show where the wide-kernel win appears end-to-end.
// Keep entries append-only — tools/check_bench.py gates each dataset section
// it finds in both snapshots and tolerates ones missing from either side.
struct DatasetSpec {
  const char* name;
  uint32_t rows;
  uint32_t cols;
  uint64_t seed;
};
constexpr DatasetSpec kDatasets[] = {
    {"grid48", 48, 48, 2026},
    {"grid96", 96, 96, 2096},
};

Graph MakeDatasetGraph(const DatasetSpec& spec) {
  RoadNetworkOptions opt;
  opt.rows = spec.rows;
  opt.cols = spec.cols;
  opt.seed = spec.seed;
  return GenerateRoadNetwork(opt);
}

// One shared fixture graph (built lazily, reused by every benchmark):
// kDatasets[0], the historical 48x48 fixture.
const Graph& BenchGraph() {
  static const Graph* graph = new Graph(MakeDatasetGraph(kDatasets[0]));
  return *graph;
}

const std::vector<QueryPair>& BenchPairs() {
  static const auto* pairs = new std::vector<QueryPair>(
      UniformRandomPairs(BenchGraph().NumVertices(), 4096, 9));
  return *pairs;
}

template <typename Index>
void RunQueries(benchmark::State& state, const Index& index) {
  const auto& pairs = BenchPairs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i];
    benchmark::DoNotOptimize(index.Query(s, t));
    i = (i + 1) & (pairs.size() - 1);
  }
}

const Hc2lIndex& BenchIndex() {
  static const auto* index =
      new Hc2lIndex(Hc2lIndex::Build(BenchGraph(), Hc2lOptions{}));
  return *index;
}

void BM_Hc2lQuery(benchmark::State& state) {
  RunQueries(state, BenchIndex());
}
BENCHMARK(BM_Hc2lQuery);

void BM_Hc2lBatchQuery(benchmark::State& state) {
  // One-to-many fast path: per-target cost with the source side hoisted and
  // targets grouped by LCA level.
  const auto& pairs = BenchPairs();
  std::vector<Vertex> targets;
  targets.reserve(pairs.size());
  for (const auto& [s, t] : pairs) targets.push_back(t);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BenchIndex().BatchQuery(pairs[i].first, targets));
    // Plain modulo: one per 4096-target batch, and unlike a pow2 mask it
    // stays a full cycle if the pair count ever changes.
    i = (i + 1) % pairs.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(targets.size()));
}
BENCHMARK(BM_Hc2lBatchQuery);

/// Random label arrays for the kernel-only benches: finite values with
/// sentinels sprinkled in, padded per the arena invariant.
std::vector<uint32_t> KernelArray(size_t len, uint64_t seed) {
  std::vector<uint32_t> v(simd::PaddedLength(len), UINT32_MAX);
  Rng rng(seed);
  for (size_t i = 0; i < len; ++i) {
    v[i] = rng.Below(16) == 0 ? UINT32_MAX
                              : static_cast<uint32_t>(rng.Below(1 << 24));
  }
  return v;
}

void BM_MinPlusKernel(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const auto a = KernelArray(len, 1);
  const auto b = KernelArray(len, 2);
  for (auto _ : state) {
    // Launder the loop-invariant operands so the pure, inlined kernel call
    // cannot be hoisted out of the timing loop.
    const uint32_t* pa = a.data();
    const uint32_t* pb = b.data();
    benchmark::DoNotOptimize(pa);
    benchmark::DoNotOptimize(pb);
    benchmark::DoNotOptimize(simd::MinPlusPadded(pa, pb, len));
  }
}
BENCHMARK(BM_MinPlusKernel)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_MinPlusScalarRef(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const auto a = KernelArray(len, 1);
  const auto b = KernelArray(len, 2);
  for (auto _ : state) {
    const uint32_t* pa = a.data();
    const uint32_t* pb = b.data();
    benchmark::DoNotOptimize(pa);
    benchmark::DoNotOptimize(pb);
    benchmark::DoNotOptimize(simd::MinPlusScalar(pa, pb, len));
  }
}
BENCHMARK(BM_MinPlusScalarRef)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_H2hQuery(benchmark::State& state) {
  static const auto* index = new H2hIndex(BenchGraph());
  RunQueries(state, *index);
}
BENCHMARK(BM_H2hQuery);

void BM_PhlQuery(benchmark::State& state) {
  static const auto* index = new PrunedHighwayLabelling(BenchGraph());
  RunQueries(state, *index);
}
BENCHMARK(BM_PhlQuery);

void BM_HlQuery(benchmark::State& state) {
  static const auto* index = [] {
    ContractionHierarchies ch(BenchGraph());
    return new HubLabelling(BenchGraph(), ch.ImportanceOrder());
  }();
  RunQueries(state, *index);
}
BENCHMARK(BM_HlQuery);

void BM_ChQuery(benchmark::State& state) {
  static const auto* index = new ContractionHierarchies(BenchGraph());
  RunQueries(state, *index);
}
BENCHMARK(BM_ChQuery);

void BM_BidirectionalDijkstraQuery(benchmark::State& state) {
  static auto* bidi = new BidirectionalDijkstra(BenchGraph());
  const auto& pairs = BenchPairs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i];
    benchmark::DoNotOptimize(bidi->Query(s, t));
    i = (i + 1) & (pairs.size() - 1);
  }
}
BENCHMARK(BM_BidirectionalDijkstraQuery);

void BM_LcaLevelPrimitive(benchmark::State& state) {
  // The XOR + clz tree-code LCA (Lemma 4.21) in isolation.
  static const auto* index =
      new Hc2lIndex(Hc2lIndex::Build(BenchGraph(), Hc2lOptions{}));
  const auto& h = index->Hierarchy();
  const size_t n = index->Stats().num_core_vertices;
  size_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        h.LcaLevel(static_cast<Vertex>(i % n),
                   static_cast<Vertex>((i * 7919) % n)));
    ++i;
  }
}
BENCHMARK(BM_LcaLevelPrimitive);

/// Host name fingerprint; paired with the CPU model in the snapshot because
/// virtualized CPUs often report a generic model string ("Intel(R) Xeon(R)
/// Processor @ 2.10GHz") on very different physical hosts.
std::string HostName() {
  char name[256] = {0};
  if (gethostname(name, sizeof(name) - 1) != 0) return "unknown";
  return name[0] != '\0' ? name : "unknown";
}

/// CPU model fingerprint (from /proc/cpuinfo; "unknown" elsewhere). Stored
/// in the snapshot so tools/check_bench.py only compares absolute timings
/// measured on the same CPU model.
std::string CpuModel() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "unknown";
  char line[256];
  std::string model = "unknown";
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) == 0) {
      const char* colon = std::strchr(line, ':');
      if (colon != nullptr) {
        const char* value = colon + 1;
        while (*value == ' ' || *value == '\t') ++value;
        model = value;
        while (!model.empty() &&
               (model.back() == '\n' || model.back() == ' ')) {
          model.pop_back();
        }
        if (model.empty()) model = "unknown";
      }
      break;
    }
  }
  std::fclose(f);
  return model;
}

/// Times fn() (which must consume `ops` operations) and returns ns/op.
template <typename Fn>
double NsPerOp(size_t ops, const Fn& fn) {
  Timer timer;
  fn();
  return timer.Seconds() * 1e9 / static_cast<double>(ops);
}

/// Self-measured per-dataset numbers (uniform random pairs, the exact
/// workload definition the snapshot's consumers rely on).
struct DatasetNumbers {
  size_t vertices = 0;
  size_t edges = 0;
  size_t queries = 0;
  double ns_query = 0;
  double ns_batch_target = 0;
  double avg_hubs = 0;
  uint64_t label_bytes = 0;
  size_t label_resident = 0;
  uint64_t label_entries = 0;
};

DatasetNumbers MeasureDataset(const Graph& g, const Hc2lIndex& index) {
  DatasetNumbers out;
  out.vertices = g.NumVertices();
  out.edges = g.NumEdges();
  const std::vector<QueryPair> pairs =
      UniformRandomPairs(g.NumVertices(), 4096, 9);

  constexpr size_t kRounds = 200;  // 200 * 4096 pairs ≈ 0.8M queries
  out.queries = kRounds * pairs.size();
  out.ns_query = NsPerOp(out.queries, [&]() {
    Dist sink = 0;
    for (size_t r = 0; r < kRounds; ++r) {
      for (const auto& [s, t] : pairs) sink ^= index.Query(s, t);
    }
    benchmark::DoNotOptimize(sink);
  });

  std::vector<Vertex> targets;
  targets.reserve(pairs.size());
  for (const auto& [s, t] : pairs) targets.push_back(t);
  out.ns_batch_target = NsPerOp(out.queries, [&]() {
    for (size_t r = 0; r < kRounds; ++r) {
      benchmark::DoNotOptimize(
          index.BatchQuery(pairs[r % pairs.size()].first, targets));
    }
  });

  uint64_t hubs = 0;
  Dist sink = 0;
  for (const auto& [s, t] : pairs) sink ^= index.QueryCountingHubs(s, t, &hubs);
  benchmark::DoNotOptimize(sink);
  out.avg_hubs =
      static_cast<double>(hubs) / static_cast<double>(pairs.size());
  out.label_bytes = index.Stats().label_bytes;
  out.label_resident = index.LabelSizeBytes();
  out.label_entries = index.Stats().label_entries;
  return out;
}

/// One directed-index configuration of the snapshot's "directed" section.
struct DirectedNumbers {
  double build_s = 0;
  double ns_query = 0;
  uint64_t label_entries = 0;
  size_t core_vertices = 0;
};

DirectedNumbers MeasureDirected(const Digraph& g, bool contract) {
  DirectedNumbers out;
  DirectedHc2lOptions options;
  options.contract_degree_one = contract;
  Timer build_timer;
  const DirectedHc2lIndex index = DirectedHc2lIndex::Build(g, options);
  out.build_s = build_timer.Seconds();
  out.label_entries = index.NumEntries();
  out.core_vertices = index.NumCoreVertices();
  const std::vector<QueryPair> pairs =
      UniformRandomPairs(g.NumVertices(), 4096, 11);
  constexpr size_t kRounds = 100;
  out.ns_query = NsPerOp(kRounds * pairs.size(), [&]() {
    Dist sink = 0;
    for (size_t r = 0; r < kRounds; ++r) {
      for (const auto& [s, t] : pairs) sink ^= index.Query(s, t);
    }
    benchmark::DoNotOptimize(sink);
  });
  return out;
}

/// Writes the machine-readable perf snapshot. Self-measured (not derived
/// from the google-benchmark run) so the numbers carry the exact workload
/// definition with them: uniform random pairs per fixture graph. The
/// historical top-level fields stay the primary (48x48) dataset; the
/// "datasets" object carries the whole trajectory.
void WriteBenchQueryJson(const char* path) {
  const DatasetNumbers primary = MeasureDataset(BenchGraph(), BenchIndex());
  const size_t num_queries = primary.queries;
  const double ns_query = primary.ns_query;
  const double ns_batch_target = primary.ns_batch_target;
  const double avg_hubs = primary.avg_hubs;

  std::string datasets_json;
  for (size_t d = 0; d < std::size(kDatasets); ++d) {
    const DatasetSpec& spec = kDatasets[d];
    DatasetNumbers numbers;
    if (d == 0) {
      numbers = primary;  // same graph/index — don't rebuild or re-measure
    } else {
      const Graph g = MakeDatasetGraph(spec);
      const Hc2lIndex index = Hc2lIndex::Build(g, Hc2lOptions{});
      numbers = MeasureDataset(g, index);
    }
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s    \"%s\": {\"vertices\": %zu, \"edges\": %zu, "
        "\"ns_per_query\": %.2f, \"ns_per_batch_target\": %.2f, "
        "\"avg_hubs_scanned\": %.2f, \"label_bytes_logical\": %llu, "
        "\"label_entries\": %llu}",
        d == 0 ? "" : ",\n", spec.name, numbers.vertices, numbers.edges,
        numbers.ns_query, numbers.ns_batch_target, numbers.avg_hubs,
        static_cast<unsigned long long>(numbers.label_bytes),
        static_cast<unsigned long long>(numbers.label_entries));
    datasets_json += buf;
  }

  // Directed trajectory: the grid48 topology with 20% one-way streets,
  // built with degree-one contraction on and off. The label-entry ratio is
  // CPU-independent (deterministic builds), so check_bench.py gates it on
  // every runner; the ns numbers gate machine-matched like the datasets.
  RoadNetworkOptions directed_opt;
  directed_opt.rows = kDatasets[0].rows;
  directed_opt.cols = kDatasets[0].cols;
  directed_opt.seed = kDatasets[0].seed;
  const Digraph directed_graph =
      GenerateDirectedRoadNetwork(directed_opt, /*one_way_frac=*/0.2);
  const DirectedNumbers dir_on = MeasureDirected(directed_graph, true);
  const DirectedNumbers dir_off = MeasureDirected(directed_graph, false);
  char directed_json[512];
  std::snprintf(
      directed_json, sizeof(directed_json),
      "{\n"
      "    \"vertices\": %zu, \"arcs\": %zu, \"core_vertices\": %zu,\n"
      "    \"contracted\": {\"ns_per_query\": %.2f, \"label_entries\": %llu, "
      "\"build_s\": %.3f},\n"
      "    \"uncontracted\": {\"ns_per_query\": %.2f, \"label_entries\": "
      "%llu, \"build_s\": %.3f}\n"
      "  }",
      directed_graph.NumVertices(), directed_graph.NumArcs(),
      dir_on.core_vertices, dir_on.ns_query,
      static_cast<unsigned long long>(dir_on.label_entries), dir_on.build_s,
      dir_off.ns_query,
      static_cast<unsigned long long>(dir_off.label_entries), dir_off.build_s);

  constexpr size_t kKernelLen = 128;
  constexpr size_t kKernelReps = 2'000'000;
  const auto ka = KernelArray(kKernelLen, 1);
  const auto kb = KernelArray(kKernelLen, 2);
  // The operand pointers are laundered through DoNotOptimize and memory is
  // clobbered each rep, so the loop-invariant kernel call cannot be hoisted.
  const auto time_kernel = [&](auto kernel) {
    return NsPerOp(kKernelReps, [&]() {
      uint32_t acc = 0;
      for (size_t r = 0; r < kKernelReps; ++r) {
        const uint32_t* pa = ka.data();
        const uint32_t* pb = kb.data();
        benchmark::DoNotOptimize(pa);
        benchmark::DoNotOptimize(pb);
        acc ^= kernel(pa, pb, kKernelLen);
        benchmark::ClobberMemory();
      }
      benchmark::DoNotOptimize(acc);
    });
  };
  const double ns_kernel = time_kernel(
      [](const uint32_t* a, const uint32_t* b, size_t len) {
        return simd::MinPlusPadded(a, b, len);
      });
  const double ns_kernel_scalar = time_kernel(
      [](const uint32_t* a, const uint32_t* b, size_t len) {
        return simd::MinPlusScalar(a, b, len);
      });

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"micro_query\",\n"
               "  \"kernel\": \"%s\",\n"
               "  \"cpu\": \"%s\",\n"
               "  \"host\": \"%s\",\n"
               "  \"graph\": {\"vertices\": %zu, \"edges\": %zu},\n"
               "  \"queries\": %zu,\n"
               "  \"ns_per_query\": %.2f,\n"
               "  \"ns_per_batch_target\": %.2f,\n"
               "  \"avg_hubs_scanned\": %.2f,\n"
               "  \"kernel_len%zu_ns\": {\"simd\": %.2f, \"scalar\": %.2f},\n"
               "  \"label_bytes_logical\": %llu,\n"
               "  \"label_bytes_resident\": %zu,\n"
               "  \"label_entries\": %llu,\n"
               "  \"datasets\": {\n%s\n  },\n"
               "  \"directed\": %s\n"
               "}\n",
               simd::kKernelName, CpuModel().c_str(), HostName().c_str(),
               primary.vertices, primary.edges, num_queries, ns_query,
               ns_batch_target, avg_hubs, kKernelLen, ns_kernel,
               ns_kernel_scalar,
               static_cast<unsigned long long>(primary.label_bytes),
               primary.label_resident,
               static_cast<unsigned long long>(primary.label_entries),
               datasets_json.c_str(), directed_json);
  std::fclose(f);
  std::printf("wrote %s (%.2f ns/query primary, %zu datasets, kernel %s)\n",
              path, ns_query, std::size(kDatasets), simd::kKernelName);
}

}  // namespace
}  // namespace hc2l

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  const char* json = std::getenv("HC2L_BENCH_JSON");
  hc2l::WriteBenchQueryJson(json != nullptr ? json : "BENCH_query.json");
  return 0;
}
