// Route-unpacking bench (the route subsystem behind Router::Route and the
// server's "route" verb). Distance queries are label-only; a route
// additionally walks the parent hints edge by edge, so the natural unit is
// nanoseconds per unpacked edge. Three measurements per flavour:
//
//  - hint unpacking through the facade's RouteInto (caller-owned span, the
//    warm zero-allocation path the server uses),
//  - the same workload through the hint-less bidirectional-Dijkstra
//    fallback (what pre-HC2L0003 index files fall back to),
//  - k-alternative routes (k=4) per returned alternative.
//
// The ns/edge numbers are merged into BENCH_query.json as the "route"
// section and gated machine-matched by tools/check_bench.py. The section is
// spliced in BEFORE the "update_latency"/"parallel" sections: both of those
// merges truncate forward from their own markers, so anything placed after
// them would be destroyed on re-merge.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchsupport/table_printer.h"
#include "benchsupport/workload.h"
#include "common/timer.h"
#include "graph/road_network_generator.h"
#include "hc2l/hc2l.h"

namespace {

using namespace hc2l;

struct RouteNumbers {
  double ns_per_route = 0.0;
  double ns_per_edge = 0.0;
  double avg_path_edges = 0.0;
  double fallback_ns_per_edge = 0.0;
  double alt_ns_per_route = 0.0;  // k=4, per returned alternative
};

/// Times RouteInto over `pairs` on `router` and returns per-route /
/// per-edge nanoseconds. Each section runs kReps times and keeps the
/// fastest pass — the least-noise estimator, so a transient load spike on
/// the runner cannot trip the check_bench gate. The checksum defeats
/// dead-code elimination.
RouteNumbers MeasureRoutes(const Router& with_hints, const Router& fallback,
                           const std::vector<QueryPair>& pairs) {
  constexpr int kReps = 3;
  RouteNumbers out;
  std::vector<Vertex> buf(with_hints.NumVertices());
  Dist weight = 0;
  uint64_t checksum = 0;
  uint64_t edges = 0;

  // Warm-up pass (touches labels, hints and the TLS scratch).
  for (const auto& [s, t] : pairs) {
    if (const auto n = with_hints.RouteInto(s, t, buf, &weight); n.ok()) {
      checksum += *n;
    }
  }
  double hint_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    edges = 0;
    Timer timer;
    for (const auto& [s, t] : pairs) {
      const auto n = with_hints.RouteInto(s, t, buf, &weight);
      if (n.ok() && *n > 0) {
        edges += *n - 1;
        checksum += buf[*n - 1];
      }
    }
    const double s = timer.Seconds();
    if (rep == 0 || s < hint_s) hint_s = s;
  }
  out.ns_per_route = hint_s * 1e9 / pairs.size();
  out.ns_per_edge = edges > 0 ? hint_s * 1e9 / edges : 0.0;
  out.avg_path_edges = static_cast<double>(edges) / pairs.size();

  for (int rep = 0; rep < kReps; ++rep) {
    uint64_t fb_edges = 0;
    Timer fb_timer;
    for (const auto& [s, t] : pairs) {
      const auto n = fallback.RouteInto(s, t, buf, &weight);
      if (n.ok() && *n > 0) {
        fb_edges += *n - 1;
        checksum += buf[*n - 1];
      }
    }
    const double ns = fb_edges > 0 ? fb_timer.Seconds() * 1e9 / fb_edges : 0.0;
    if (rep == 0 || ns < out.fallback_ns_per_edge) {
      out.fallback_ns_per_edge = ns;
    }
  }

  double alt_s = 0.0;
  uint64_t alternatives = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    alternatives = 0;
    Timer alt_timer;
    for (size_t i = 0; i < pairs.size() / 8; ++i) {
      const auto alts = with_hints.Routes(pairs[i].first, pairs[i].second, 4);
      if (alts.ok()) {
        alternatives += alts->size();
        for (const RoutePath& r : *alts) checksum += r.weight;
      }
    }
    const double s = alt_timer.Seconds();
    if (rep == 0 || s < alt_s) alt_s = s;
  }
  out.alt_ns_per_route =
      alternatives > 0 ? alt_s * 1e9 / alternatives : 0.0;

  if (checksum == 0) std::printf("(empty checksum)\n");
  return out;
}

/// Splices the "route" section into BENCH_query.json. A prior copy is
/// dropped first; the fresh section lands before the "update_latency" and
/// "parallel" sections, whose own merges truncate forward and would destroy
/// anything placed after them.
void MergeRouteSection(const std::string& path, const std::string& section) {
  std::string existing;
  if (std::FILE* f = std::fopen(path.c_str(), "rb"); f != nullptr) {
    char buf[4096];
    size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      existing.append(buf, got);
    }
    std::fclose(f);
  }
  const std::string kMarker = ",\n  \"route\":";
  const std::string kUpdateMarker = ",\n  \"update_latency\":";
  const std::string kParallelMarker = ",\n  \"parallel\":";
  if (const size_t m = existing.find(kMarker); m != std::string::npos) {
    size_t next = existing.find(kUpdateMarker, m);
    if (next == std::string::npos) {
      next = existing.find(kParallelMarker, m);
    }
    existing = existing.substr(0, m) +
               (next != std::string::npos ? existing.substr(next) : "\n}\n");
  }
  std::string out;
  size_t insert = existing.find(kUpdateMarker);
  if (insert == std::string::npos) insert = existing.find(kParallelMarker);
  const size_t close = existing.rfind('}');
  if (close == std::string::npos) {
    out = "{\n  \"bench\": \"route_unpack\"" + section + "\n}\n";
  } else if (insert != std::string::npos) {
    out = existing.substr(0, insert) + section + existing.substr(insert);
  } else {
    out = existing.substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
    out += section + "\n}\n";
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

}  // namespace

int main() {
  // Same grid48 topology and seed as the micro-query trajectory, so the
  // route numbers describe the same index the distance numbers do.
  RoadNetworkOptions opt;
  opt.rows = 48;
  opt.cols = 48;
  opt.seed = 2026;
  const Graph g = GenerateRoadNetwork(opt);
  const Digraph dg = GenerateDirectedRoadNetwork(opt, /*one_way_frac=*/0.2);

  std::printf("=== Route unpacking: label hints vs Dijkstra fallback ===\n");

  BuildOptions hintless_options;
  hintless_options.route_hints = false;

  Result<Router> und = Router::Build(g);
  Result<Router> und_fallback = Router::Build(g, hintless_options);
  Result<Router> dir = Router::Build(dg);
  Result<Router> dir_fallback = Router::Build(dg, hintless_options);
  if (!und.ok() || !und_fallback.ok() || !dir.ok() || !dir_fallback.ok()) {
    std::fprintf(stderr, "FATAL: build failed\n");
    return 1;
  }
  dir_fallback->AttachDigraph(dg);  // directed builds do not auto-attach

  const size_t kPairs = 20000;
  const auto pairs = UniformRandomPairs(g.NumVertices(), kPairs, 11);

  const RouteNumbers u = MeasureRoutes(*und, *und_fallback, pairs);
  const RouteNumbers d = MeasureRoutes(*dir, *dir_fallback, pairs);

  TablePrinter table({"Flavour", "ns/route", "ns/edge", "edges/route",
                      "fallback ns/edge", "k=4 ns/alt"});
  table.AddRow({"undirected", FormatDouble(u.ns_per_route, 1),
                FormatDouble(u.ns_per_edge, 2),
                FormatDouble(u.avg_path_edges, 1),
                FormatDouble(u.fallback_ns_per_edge, 2),
                FormatDouble(u.alt_ns_per_route, 1)});
  table.AddRow({"directed", FormatDouble(d.ns_per_route, 1),
                FormatDouble(d.ns_per_edge, 2),
                FormatDouble(d.avg_path_edges, 1),
                FormatDouble(d.fallback_ns_per_edge, 2),
                FormatDouble(d.alt_ns_per_route, 1)});
  table.Print();

  char section[640];
  std::snprintf(
      section, sizeof(section),
      ",\n  \"route\": {\n"
      "    \"api\": \"router\",\n"
      "    \"queries\": %zu,\n"
      "    \"undirected\": {\"ns_per_route\": %.1f, \"ns_per_edge\": %.2f, "
      "\"avg_path_edges\": %.1f, \"fallback_ns_per_edge\": %.2f, "
      "\"alt_ns_per_route\": %.1f},\n"
      "    \"directed\": {\"ns_per_route\": %.1f, \"ns_per_edge\": %.2f, "
      "\"avg_path_edges\": %.1f, \"fallback_ns_per_edge\": %.2f, "
      "\"alt_ns_per_route\": %.1f}\n  }",
      kPairs, u.ns_per_route, u.ns_per_edge, u.avg_path_edges,
      u.fallback_ns_per_edge, u.alt_ns_per_route, d.ns_per_route,
      d.ns_per_edge, d.avg_path_edges, d.fallback_ns_per_edge,
      d.alt_ns_per_route);
  const char* json = std::getenv("HC2L_BENCH_JSON");
  const std::string path = json != nullptr ? json : "BENCH_query.json";
  MergeRouteSection(path, section);
  std::printf("merged route section into %s\n", path.c_str());
  return 0;
}
