// Reproduces Table 1: dataset summary (|V|, |E|, diameter, memory).
//
// The datasets are synthetic miniatures of the paper's DIMACS/PTV road
// networks (see DESIGN.md §4); the paper's |V| is shown alongside for the
// scale mapping. Scale via HC2L_BENCH_SCALE=tiny|small|medium|large.

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "benchsupport/workload.h"
#include "graph/road_network_generator.h"

int main() {
  using namespace hc2l;
  std::printf("=== Table 1: Summary of datasets (synthetic miniatures) ===\n");
  TablePrinter table({"Dataset", "|V|", "|E|", "diam.", "Memory",
                      "paper |V|"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kDistance)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    table.AddRow({spec.name, std::to_string(g.NumVertices()),
                  std::to_string(g.NumEdges()),
                  std::to_string(EstimateDiameter(g) / 1000) + " km",
                  FormatBytes(g.MemoryBytes()),
                  std::to_string(spec.paper_num_vertices)});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: sizes increase NY < BAY < COL < FLA < CAL < E "
      "< W < CTR < EUR < USA; diameters grow with size.\n");
  return 0;
}
