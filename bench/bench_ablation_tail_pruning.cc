// Ablation from Section 5.1.2: "without tail pruning index sizes grow by
// 10-15%, but construction time is reduced by around 20%". Disabling tail
// pruning yields the naive upper-bound labelling of Section 4.2.1 (full
// per-level distance arrays). Query results stay identical; only size,
// construction time and scan width change. Runs through the public facade.

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "hc2l/hc2l.h"

int main() {
  using namespace hc2l;
  std::printf("=== Ablation: tail pruning on/off (Section 5.1.2) ===\n\n");
  TablePrinter table({"Dataset", "entries on", "entries off", "size growth",
                      "build on[s]", "build off[s]", "Q on[us]", "Q off[us]"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kDistance)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    BuildOptions pruned;
    pruned.tail_pruning = true;
    BuildOptions naive;
    naive.tail_pruning = false;
    const Result<Router> on = Router::Build(g, pruned);
    const Result<Router> off = Router::Build(g, naive);
    if (!on.ok() || !off.ok()) return 1;
    const auto pairs =
        UniformRandomPairs(g.NumVertices(), BenchQueryCount() / 2, 21);
    const double q_on = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return on->DistanceUnchecked(s, t); }, pairs);
    const double q_off = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return off->DistanceUnchecked(s, t); },
        pairs);
    const IndexInfo on_info = on->Info();
    const IndexInfo off_info = off->Info();
    const double growth =
        100.0 * (static_cast<double>(off_info.label_entries) /
                     static_cast<double>(on_info.label_entries) -
                 1.0);
    table.AddRow({spec.name, std::to_string(on_info.label_entries),
                  std::to_string(off_info.label_entries),
                  FormatDouble(growth, 1) + "%",
                  FormatSeconds(on_info.build_seconds),
                  FormatSeconds(off_info.build_seconds),
                  FormatMicros(q_on), FormatMicros(q_off)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: disabling pruning grows labels ~10-15%% and "
      "cuts construction time ~20%%.\n");
  return 0;
}
