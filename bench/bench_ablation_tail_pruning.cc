// Ablation from Section 5.1.2: "without tail pruning index sizes grow by
// 10-15%, but construction time is reduced by around 20%". Disabling tail
// pruning yields the naive upper-bound labelling of Section 4.2.1 (full
// per-level distance arrays). Query results stay identical; only size,
// construction time and scan width change.

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "benchsupport/workload.h"
#include "core/hc2l.h"

int main() {
  using namespace hc2l;
  std::printf("=== Ablation: tail pruning on/off (Section 5.1.2) ===\n\n");
  TablePrinter table({"Dataset", "entries on", "entries off", "size growth",
                      "build on[s]", "build off[s]", "Q on[us]", "Q off[us]"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kDistance)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    Hc2lOptions pruned;
    pruned.tail_pruning = true;
    Hc2lOptions naive;
    naive.tail_pruning = false;
    const Hc2lIndex on = Hc2lIndex::Build(g, pruned);
    const Hc2lIndex off = Hc2lIndex::Build(g, naive);
    const auto pairs =
        UniformRandomPairs(g.NumVertices(), BenchQueryCount() / 2, 21);
    const double q_on = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return on.Query(s, t); }, pairs);
    const double q_off = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return off.Query(s, t); }, pairs);
    const double growth =
        100.0 * (static_cast<double>(off.Stats().label_entries) /
                     static_cast<double>(on.Stats().label_entries) -
                 1.0);
    table.AddRow({spec.name, std::to_string(on.Stats().label_entries),
                  std::to_string(off.Stats().label_entries),
                  FormatDouble(growth, 1) + "%",
                  FormatSeconds(on.Stats().build_seconds),
                  FormatSeconds(off.Stats().build_seconds),
                  FormatMicros(q_on), FormatMicros(q_off)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: disabling pruning grows labels ~10-15%% and "
      "cuts construction time ~20%%.\n");
  return 0;
}
