// Reproduces Figure 6: average query time per distance-banded query set
// Q1..Q10 (l_min = 1000 m, geometric bands up to the diameter) for
// HC2L / H2H / PHL / HL on every dataset, distance weights.
//
// The paper's shape: HC2L is fastest in every band; PHL is relatively poor
// on local (Q1-Q3) queries; all methods drift slowly upward with distance.

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "benchsupport/workload.h"

int main() {
  using namespace hc2l;
  std::printf("=== Figure 6: query time (us) vs distance band ===\n\n");
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kDistance)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    EvaluationDriver driver(g, Hc2lOptions{}, /*build_baselines=*/true);
    DistanceBandedQuerySets sets = GenerateDistanceBandedSets(
        g, /*per_set=*/2000, /*seed=*/spec.options.seed * 31 + 5);

    std::printf("--- %s (l_min=%llu, l_max=%llu) ---\n", spec.name.c_str(),
                static_cast<unsigned long long>(sets.l_min),
                static_cast<unsigned long long>(sets.l_max));
    TablePrinter table({"Method", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7",
                        "Q8", "Q9", "Q10"});
    for (MethodEvaluation& m : driver.Result().methods) {
      std::vector<std::string> row{m.name};
      for (int band = 0; band < 10; ++band) {
        const auto& pairs = sets.sets[band];
        if (pairs.empty()) {
          row.push_back("-");
          continue;
        }
        // Repeat small sets so each cell measures a comparable query count.
        std::vector<QueryPair> timed = pairs;
        while (timed.size() < 10000) {
          timed.insert(timed.end(), pairs.begin(), pairs.end());
        }
        row.push_back(FormatMicros(MeasureAvgQueryMicros(m.query, timed)));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
