// Reproduces Table 4: query times, labelling sizes and construction times
// with *travel times* as edge weights. The paper's shape: PHL and HL labels
// shrink markedly versus Table 2 (better orderings on travel-time metrics),
// HC2L shrinks slightly, H2H stays roughly the same; HC2L remains fastest.

#include "bench_table_common.h"

int main() {
  hc2l::RunMainComparisonTable(
      hc2l::WeightMode::kTravelTime,
      "Table 4: query time / labelling size / construction time "
      "(travel-time weights)");
  return 0;
}
