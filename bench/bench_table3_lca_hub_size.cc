// Reproduces Table 3: LCA storage requirements (HC2L's packed tree codes vs
// H2H's Euler-tour RMQ tables) and Average Hub Size — the mean number of
// label entries scanned per query — for HC2L / H2H / PHL / HL. The P2H
// column prints "-" (its implementation was unavailable to the paper's
// authors as well; they quote numbers from the P2H publication).

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "benchsupport/workload.h"

int main() {
  using namespace hc2l;
  std::printf(
      "=== Table 3: LCA storage and Average Hub Size (distance weights) "
      "===\n\n");
  TablePrinter table({"Dataset", "LCA HC2L", "LCA H2H", "AHS HC2L", "AHS P2H",
                      "AHS H2H", "AHS PHL", "AHS HL"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kDistance)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    EvaluationDriver driver(g, Hc2lOptions{}, /*build_baselines=*/true);
    const auto pairs =
        UniformRandomPairs(g.NumVertices(), BenchQueryCount() / 10, 7);
    driver.MeasureQueries(pairs);
    const DatasetEvaluation& e = driver.Result();
    table.AddRow({spec.name,
                  FormatBytes(e.methods[0].lca_bytes),
                  FormatBytes(e.methods[1].lca_bytes),
                  FormatDouble(e.methods[0].avg_hub_size, 1),
                  "-",
                  FormatDouble(e.methods[1].avg_hub_size, 1),
                  FormatDouble(e.methods[2].avg_hub_size, 1),
                  FormatDouble(e.methods[3].avg_hub_size, 1)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: HC2L LCA storage ~10-30x smaller than H2H's "
      "RMQ tables; AHS(HC2L) < AHS(H2H), AHS(PHL), AHS(HL).\n");
  return 0;
}
