// Extension bench (Section 5.4 remark): dynamic weight updates. The balanced
// tree hierarchy is weight-independent, so after traffic-style weight changes
// only the distance values (contraction offsets, shortcuts, label arrays)
// need recomputation. This bench measures RebuildLabels() against a full
// Build() and verifies both yield identical index sizes.

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/hc2l.h"

namespace {

hc2l::Graph PerturbWeights(const hc2l::Graph& g, double frac, uint64_t seed) {
  using namespace hc2l;
  std::vector<Edge> edges = g.UndirectedEdges();
  Rng rng(seed);
  for (Edge& e : edges) {
    if (rng.Chance(frac)) {
      // Congestion: weight inflated 1x-4x.
      e.weight = static_cast<Weight>(e.weight * (1.0 + 3.0 * rng.NextDouble()));
    }
  }
  GraphBuilder builder(g.NumVertices());
  builder.AddEdges(edges);
  return std::move(builder).Build();
}

}  // namespace

int main() {
  using namespace hc2l;
  std::printf(
      "=== Extension: dynamic weight updates (Section 5.4) ===\n"
      "10%% of road segments congested; hierarchy reused, distances "
      "recomputed.\n\n");
  TablePrinter table({"Dataset", "full build[s]", "rebuild[s]", "speedup",
                      "queries exact"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kTravelTime)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    Hc2lIndex index = Hc2lIndex::Build(g);
    const double full_build = index.Stats().build_seconds;

    const Graph congested = PerturbWeights(g, 0.1, spec.options.seed + 1);
    Timer timer;
    index.RebuildLabels(congested);
    const double rebuild = timer.Seconds();

    // Spot-verify exactness on the updated weights.
    Hc2lIndex reference = Hc2lIndex::Build(congested);
    Rng rng(3);
    bool exact = true;
    for (int i = 0; i < 2000 && exact; ++i) {
      const Vertex s = static_cast<Vertex>(rng.Below(g.NumVertices()));
      const Vertex t = static_cast<Vertex>(rng.Below(g.NumVertices()));
      exact = index.Query(s, t) == reference.Query(s, t);
    }
    table.AddRow({spec.name, FormatSeconds(full_build),
                  FormatSeconds(rebuild),
                  FormatDouble(full_build / std::max(rebuild, 1e-9), 1) + "x",
                  exact ? "yes" : "NO"});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
