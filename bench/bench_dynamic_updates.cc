// Extension bench (Section 5.4 remark): dynamic weight updates. The balanced
// tree hierarchy is weight-independent, so after traffic-style weight changes
// only the distance values (contraction offsets, shortcuts, label arrays)
// need recomputation. This bench measures Router::RebuildLabels() against a
// full Build() and verifies both yield identical answers. Runs through the
// public facade.

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "hc2l/hc2l.h"

namespace {

hc2l::Graph PerturbWeights(const hc2l::Graph& g, double frac, uint64_t seed) {
  using namespace hc2l;
  std::vector<Edge> edges = g.UndirectedEdges();
  Rng rng(seed);
  for (Edge& e : edges) {
    if (rng.Chance(frac)) {
      // Congestion: weight inflated 1x-4x.
      e.weight = static_cast<Weight>(e.weight * (1.0 + 3.0 * rng.NextDouble()));
    }
  }
  GraphBuilder builder(g.NumVertices());
  builder.AddEdges(edges);
  return std::move(builder).Build();
}

}  // namespace

int main() {
  using namespace hc2l;
  std::printf(
      "=== Extension: dynamic weight updates (Section 5.4) ===\n"
      "10%% of road segments congested; hierarchy reused, distances "
      "recomputed.\n\n");
  TablePrinter table({"Dataset", "full build[s]", "rebuild[s]", "speedup",
                      "queries exact"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kTravelTime)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    Result<Router> index = Router::Build(g);
    if (!index.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", index.status().ToString().c_str());
      return 1;
    }
    const double full_build = index->Info().build_seconds;

    const Graph congested = PerturbWeights(g, 0.1, spec.options.seed + 1);
    Timer timer;
    if (Status s = index->RebuildLabels(congested); !s.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", s.ToString().c_str());
      return 1;
    }
    const double rebuild = timer.Seconds();

    // Spot-verify exactness on the updated weights.
    const Result<Router> reference = Router::Build(congested);
    if (!reference.ok()) return 1;
    Rng rng(3);
    bool exact = true;
    for (int i = 0; i < 2000 && exact; ++i) {
      const Vertex s = static_cast<Vertex>(rng.Below(g.NumVertices()));
      const Vertex t = static_cast<Vertex>(rng.Below(g.NumVertices()));
      exact = index->DistanceUnchecked(s, t) ==
              reference->DistanceUnchecked(s, t);
    }
    table.AddRow({spec.name, FormatSeconds(full_build),
                  FormatSeconds(rebuild),
                  FormatDouble(full_build / std::max(rebuild, 1e-9), 1) + "x",
                  exact ? "yes" : "NO"});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
