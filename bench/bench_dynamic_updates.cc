// Extension bench (Section 5.4 remark): dynamic weight updates. The balanced
// tree hierarchy is weight-independent, so after traffic-style weight changes
// only the distance values (contraction offsets, shortcuts, label arrays)
// need recomputation. This bench measures three tiers per dataset:
//
//  - a full Build() (partitioning + max-flow + labels, the paper's baseline),
//  - Router::RebuildLabels() (hierarchy reused, every label recomputed),
//  - Hc2lIndex::RepairLabels() on a small delta batch (scoped: only subtrees
//    whose separators cover a changed edge are recomputed — the live-traffic
//    path behind the server's update_weights verb).
//
// The scoped tier also reports the recomputed/total label-entry ratio, which
// is deterministic in (graph, deltas) and therefore CPU-independent: it is
// merged into BENCH_query.json as the "update_latency" section and gated by
// tools/check_bench.py on every runner. The section is spliced in BEFORE any
// "parallel" section — bench_parallel_query truncates from its own marker to
// EOF when re-merging, so anything after it would be destroyed.

#include <cstdio>
#include <cstdlib>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "core/hc2l.h"
#include "hc2l/hc2l.h"

namespace {

using namespace hc2l;

Graph PerturbWeights(const Graph& g, double frac, uint64_t seed) {
  std::vector<Edge> edges = g.UndirectedEdges();
  Rng rng(seed);
  for (Edge& e : edges) {
    if (rng.Chance(frac)) {
      // Congestion: weight inflated 1x-4x.
      e.weight = static_cast<Weight>(e.weight * (1.0 + 3.0 * rng.NextDouble()));
    }
  }
  GraphBuilder builder(g.NumVertices());
  builder.AddEdges(edges);
  return std::move(builder).Build();
}

/// Small live-traffic batch: `count` spread-out edges congested 2x-4x.
/// Returns the updated graph and fills `deltas` with exactly those edges.
Graph SmallBatch(const Graph& g, size_t count, uint64_t seed,
                 std::vector<EdgeDelta>* deltas) {
  std::vector<Edge> edges = g.UndirectedEdges();
  Rng rng(seed);
  deltas->clear();
  const size_t stride = edges.size() / count;
  for (size_t i = 0; i < count; ++i) {
    Edge& e = edges[i * stride + rng.Below(stride)];
    e.weight = static_cast<Weight>(e.weight * (2.0 + 2.0 * rng.NextDouble()));
    deltas->push_back({e.u, e.v, e.weight});
  }
  GraphBuilder builder(g.NumVertices());
  builder.AddEdges(edges);
  return std::move(builder).Build();
}

/// Splices the "update_latency" section into BENCH_query.json, replacing a
/// prior copy and keeping it ahead of any "parallel" section (whose merge
/// truncates from its marker to EOF).
void MergeUpdateSection(const std::string& path, const std::string& section) {
  std::string existing;
  if (std::FILE* f = std::fopen(path.c_str(), "rb"); f != nullptr) {
    char buf[4096];
    size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      existing.append(buf, got);
    }
    std::fclose(f);
  }
  const std::string kMarker = ",\n  \"update_latency\":";
  const std::string kParallelMarker = ",\n  \"parallel\":";
  // Drop a previously merged copy (it ends where the parallel section — or
  // the closing brace — begins).
  if (const size_t m = existing.find(kMarker); m != std::string::npos) {
    const size_t p = existing.find(kParallelMarker, m);
    existing = existing.substr(0, m) +
               (p != std::string::npos ? existing.substr(p) : "\n}\n");
  }
  std::string out;
  const size_t close = existing.rfind('}');
  if (close == std::string::npos) {
    out = "{\n  \"bench\": \"dynamic_updates\"" + section + "\n}\n";
  } else if (const size_t p = existing.find(kParallelMarker);
             p != std::string::npos) {
    out = existing.substr(0, p) + section + existing.substr(p);
  } else {
    out = existing.substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
    out += section + "\n}\n";
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

}  // namespace

int main() {
  constexpr size_t kBatchEdges = 8;
  std::printf(
      "=== Extension: dynamic weight updates (Section 5.4) ===\n"
      "Bulk: 10%% of road segments congested -> full label rebuild.\n"
      "Live: %zu-edge batch -> scoped repair (only covering subtrees).\n\n",
      kBatchEdges);
  TablePrinter table({"Dataset", "full build[s]", "rebuild[s]", "repair[ms]",
                      "vs rebuild", "repaired/total", "queries exact"});
  std::string json_datasets;
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kTravelTime)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    Result<Router> index = Router::Build(g);
    if (!index.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", index.status().ToString().c_str());
      return 1;
    }
    const double full_build = index->Info().build_seconds;

    const Graph congested = PerturbWeights(g, 0.1, spec.options.seed + 1);
    Timer timer;
    if (Status s = index->RebuildLabels(congested); !s.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", s.ToString().c_str());
      return 1;
    }
    const double rebuild = timer.Seconds();

    // Live tier: a warmed core index takes a small batch through the scoped
    // repair; an identically warmed twin takes the same graph through the
    // full relabel walk for the apples-to-apples latency column.
    std::vector<EdgeDelta> deltas;
    const Graph live = SmallBatch(congested, kBatchEdges,
                                  spec.options.seed + 2, &deltas);
    Hc2lIndex repaired = Hc2lIndex::Build(congested);
    Hc2lIndex rebuilt = Hc2lIndex::Build(congested);
    if (!repaired.RebuildLabels(congested).ok() ||  // warm the repair cache
        !rebuilt.RebuildLabels(congested).ok()) {
      return 1;
    }
    Timer repair_timer;
    if (Status s = repaired.RepairLabels(live, deltas); !s.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", s.ToString().c_str());
      return 1;
    }
    const double repair_s = repair_timer.Seconds();
    Timer rebuild_timer;
    if (!rebuilt.RebuildLabels(live).ok()) return 1;
    const double rebuild_small = rebuild_timer.Seconds();
    const RepairStats& rs = repaired.LastRepairStats();
    const double total = static_cast<double>(rs.recomputed_entries +
                                             rs.reused_entries);
    const double ratio =
        total > 0 ? static_cast<double>(rs.recomputed_entries) / total : 1.0;

    // Spot-verify exactness of both tiers against a fresh build.
    const Result<Router> reference = Router::Build(congested);
    if (!reference.ok()) return 1;
    Rng rng(3);
    bool exact = true;
    for (int i = 0; i < 2000 && exact; ++i) {
      const Vertex s = static_cast<Vertex>(rng.Below(g.NumVertices()));
      const Vertex t = static_cast<Vertex>(rng.Below(g.NumVertices()));
      exact = index->DistanceUnchecked(s, t) ==
              reference->DistanceUnchecked(s, t) &&
              repaired.Query(s, t) == rebuilt.Query(s, t);
    }
    table.AddRow({spec.name, FormatSeconds(full_build),
                  FormatSeconds(rebuild),
                  FormatDouble(repair_s * 1e3, 2),
                  FormatDouble(rebuild_small /
                               std::max(repair_s, 1e-9), 1) + "x",
                  FormatDouble(ratio, 3),
                  exact ? "yes" : "NO"});
    std::fflush(stdout);

    char entry[320];
    std::snprintf(
        entry, sizeof(entry),
        "%s\n      \"%s\": {\"repair_ms\": %.3f, \"rebuild_ms\": %.3f, "
        "\"recomputed_entries\": %llu, \"reused_entries\": %llu, "
        "\"repair_ratio\": %.4f, \"scoped\": %s}",
        json_datasets.empty() ? "" : ",", spec.name.c_str(), repair_s * 1e3,
        rebuild_small * 1e3,
        static_cast<unsigned long long>(rs.recomputed_entries),
        static_cast<unsigned long long>(rs.reused_entries), ratio,
        rs.full_rebuild ? "false" : "true");
    json_datasets += entry;
  }
  table.Print();

  char head[96];
  std::snprintf(head, sizeof(head),
                ",\n  \"update_latency\": {\n"
                "    \"batch_edges\": %zu,\n"
                "    \"datasets\": {",
                kBatchEdges);
  const std::string section =
      std::string(head) + json_datasets + "}\n  }";
  const char* json = std::getenv("HC2L_BENCH_JSON");
  const std::string path = json != nullptr ? json : "BENCH_query.json";
  MergeUpdateSection(path, section);
  std::printf("merged update_latency section into %s\n", path.c_str());
  return 0;
}
