// Continental-scale serving bench: cold-open latency of the mmap-able V4
// format vs the heap deserialize, arena residency split, and query latency
// through a 3-shard sharded index — all on a grid96-scale road network
// (~12k vertices, the largest fixture in the suite).
//
// The headline number is the cold-open speedup: Router::Open with
// OpenMode::kMmap parses only the section table and the small metadata
// section, mapping the label/hint arenas in place, while the heap open
// copies every arena byte and scans the hint entries. The numbers are
// merged into BENCH_query.json as the "large_graph" section and gated by
// tools/check_bench.py (machine-matched absolutes plus an always-on
// speedup floor). Like the "route" section, the merge splices BEFORE the
// "update_latency"/"parallel" markers, whose own merges truncate forward.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchsupport/table_printer.h"
#include "benchsupport/workload.h"
#include "common/timer.h"
#include "graph/road_network_generator.h"
#include "hc2l/hc2l.h"
#include "shard/sharded_index.h"

namespace {

using namespace hc2l;

/// Best-of-N cold opens in one mode, in milliseconds. Every rep opens a
/// fresh Router from the same (page-cache-warm) file, so the measurement
/// isolates the deserialize-vs-map work rather than disk latency.
double MeasureColdOpenMs(const std::string& path, OpenMode mode, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    Result<Router> router = Router::Open(path, mode);
    const double ms = timer.Seconds() * 1e3;
    if (!router.ok()) {
      std::fprintf(stderr, "FATAL: open failed: %s\n",
                   router.status().ToString().c_str());
      std::exit(1);
    }
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

/// Best-of-3 per-query nanoseconds over `pairs` via DistanceUnchecked (the
/// facade's hot path). The checksum defeats dead-code elimination.
double MeasureQueryNs(const Router& router,
                      const std::vector<QueryPair>& pairs) {
  uint64_t checksum = 0;
  for (const auto& [s, t] : pairs) checksum += router.DistanceUnchecked(s, t);
  double best_s = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    for (const auto& [s, t] : pairs) {
      checksum += router.DistanceUnchecked(s, t);
    }
    const double s = timer.Seconds();
    if (rep == 0 || s < best_s) best_s = s;
  }
  if (checksum == 0) std::printf("(empty checksum)\n");
  return best_s * 1e9 / pairs.size();
}

/// Splices the "large_graph" section into BENCH_query.json, before the
/// "update_latency"/"parallel" markers (their merges truncate forward and
/// would destroy anything placed after them).
void MergeLargeGraphSection(const std::string& path,
                            const std::string& section) {
  std::string existing;
  if (std::FILE* f = std::fopen(path.c_str(), "rb"); f != nullptr) {
    char buf[4096];
    size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      existing.append(buf, got);
    }
    std::fclose(f);
  }
  const std::string kMarker = ",\n  \"large_graph\":";
  const std::string kUpdateMarker = ",\n  \"update_latency\":";
  const std::string kParallelMarker = ",\n  \"parallel\":";
  if (const size_t m = existing.find(kMarker); m != std::string::npos) {
    size_t next = existing.find(kUpdateMarker, m);
    if (next == std::string::npos) {
      next = existing.find(kParallelMarker, m);
    }
    existing = existing.substr(0, m) +
               (next != std::string::npos ? existing.substr(next) : "\n}\n");
  }
  std::string out;
  size_t insert = existing.find(kUpdateMarker);
  if (insert == std::string::npos) insert = existing.find(kParallelMarker);
  const size_t close = existing.rfind('}');
  if (close == std::string::npos) {
    out = "{\n  \"bench\": \"large_graph\"" + section + "\n}\n";
  } else if (insert != std::string::npos) {
    out = existing.substr(0, insert) + section + existing.substr(insert);
  } else {
    out = existing.substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
    out += section + "\n}\n";
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

}  // namespace

int main() {
  RoadNetworkOptions opt;
  opt.rows = 96;
  opt.cols = 96;
  opt.seed = 2026;
  const Graph g = GenerateRoadNetwork(opt);

  std::printf("=== Continental-scale serving: mmap cold open + shards ===\n");
  std::printf("graph: %zu vertices\n\n", g.NumVertices());

  BuildOptions build;
  build.num_threads = 0;  // all hardware threads
  Result<Router> mono = Router::Build(g, build);
  if (!mono.ok()) {
    std::fprintf(stderr, "FATAL: build failed\n");
    return 1;
  }
  const std::string index_path = TempPath("hc2l_bench_large.idx");
  if (!mono->Save(index_path).ok()) {
    std::fprintf(stderr, "FATAL: save failed\n");
    return 1;
  }

  constexpr int kOpenReps = 5;
  const double heap_ms = MeasureColdOpenMs(index_path, OpenMode::kHeap,
                                           kOpenReps);
  const double mmap_ms = MeasureColdOpenMs(index_path, OpenMode::kMmap,
                                           kOpenReps);
  const double speedup = mmap_ms > 0.0 ? heap_ms / mmap_ms : 0.0;

  Result<Router> mapped = Router::Open(index_path, OpenMode::kMmap);
  Result<Router> heaped = Router::Open(index_path, OpenMode::kHeap);
  if (!mapped.ok() || !heaped.ok()) {
    std::fprintf(stderr, "FATAL: reopen failed\n");
    return 1;
  }
  const IndexInfo mapped_info = mapped->Info();
  const IndexInfo heaped_info = heaped->Info();

  // The sharded layer on the same graph: 3 shards, queried through the
  // facade over the saved manifest (the serving configuration). Uniform
  // random pairs on a 3-way partition mostly cross shards, so the number
  // is dominated by the boundary-join path.
  ShardOptions shard_options;
  shard_options.num_shards = 3;
  shard_options.num_threads = 0;
  Result<ShardedIndex> sharded = ShardedIndex::Build(g, shard_options);
  if (!sharded.ok()) {
    std::fprintf(stderr, "FATAL: shard build failed: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  const std::string manifest_path = TempPath("hc2l_bench_large.hc2s");
  if (!sharded->Save(manifest_path).ok()) {
    std::fprintf(stderr, "FATAL: manifest save failed\n");
    return 1;
  }
  Result<Router> sharded_router = Router::Open(manifest_path, OpenMode::kMmap);
  if (!sharded_router.ok()) {
    std::fprintf(stderr, "FATAL: manifest open failed: %s\n",
                 sharded_router.status().ToString().c_str());
    return 1;
  }

  const size_t kPairs = 20000;
  const auto pairs = UniformRandomPairs(g.NumVertices(), kPairs, 17);
  const double mono_ns = MeasureQueryNs(*mapped, pairs);
  const double sharded_ns = MeasureQueryNs(*sharded_router, pairs);

  TablePrinter table({"Metric", "Value"});
  table.AddRow({"cold open, heap [ms]", FormatDouble(heap_ms, 2)});
  table.AddRow({"cold open, mmap [ms]", FormatDouble(mmap_ms, 2)});
  table.AddRow({"open speedup", FormatDouble(speedup, 1) + "x"});
  table.AddRow({"mmap mapped bytes",
                std::to_string(mapped_info.mapped_bytes)});
  table.AddRow({"mmap heap bytes", std::to_string(mapped_info.heap_bytes)});
  table.AddRow({"heap-open heap bytes",
                std::to_string(heaped_info.heap_bytes)});
  table.AddRow({"shards", std::to_string(sharded->NumShards())});
  table.AddRow({"boundary vertices",
                std::to_string(sharded->NumBoundaryVertices())});
  table.AddRow({"mono query [ns]", FormatDouble(mono_ns, 1)});
  table.AddRow({"sharded query [ns]", FormatDouble(sharded_ns, 1)});
  table.Print();

  char section[768];
  std::snprintf(
      section, sizeof(section),
      ",\n  \"large_graph\": {\n"
      "    \"api\": \"router\",\n"
      "    \"vertices\": %zu,\n"
      "    \"queries\": %zu,\n"
      "    \"cold_open_heap_ms\": %.3f,\n"
      "    \"cold_open_mmap_ms\": %.3f,\n"
      "    \"open_speedup\": %.1f,\n"
      "    \"mmap_mapped_bytes\": %llu,\n"
      "    \"mmap_heap_bytes\": %llu,\n"
      "    \"shards\": %zu,\n"
      "    \"boundary_vertices\": %zu,\n"
      "    \"mono_query_ns\": %.1f,\n"
      "    \"sharded_query_ns\": %.1f\n  }",
      g.NumVertices(), kPairs, heap_ms, mmap_ms, speedup,
      static_cast<unsigned long long>(mapped_info.mapped_bytes),
      static_cast<unsigned long long>(mapped_info.heap_bytes),
      sharded->NumShards(), sharded->NumBoundaryVertices(), mono_ns,
      sharded_ns);
  const char* json = std::getenv("HC2L_BENCH_JSON");
  const std::string path = json != nullptr ? json : "BENCH_query.json";
  MergeLargeGraphSection(path, section);
  std::printf("merged large_graph section into %s\n", path.c_str());

  std::remove(index_path.c_str());
  std::remove(manifest_path.c_str());
  for (size_t k = 0; k < sharded->NumShards(); ++k) {
    std::remove((manifest_path + "." + std::to_string(k)).c_str());
  }
  return 0;
}
