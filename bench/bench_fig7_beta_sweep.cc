// Reproduces Figure 7: average query time and average cut size under varying
// balance thresholds beta in {0.15, 0.20, 0.25, 0.30, 0.35}, distance
// weights. The paper finds beta = 0.20 near-optimal: query time tracks cut
// size, both mildly U-shaped around 0.2. Runs through the public facade.

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "hc2l/hc2l.h"

int main() {
  using namespace hc2l;
  static constexpr double kBetas[] = {0.15, 0.20, 0.25, 0.30, 0.35};
  std::printf(
      "=== Figure 7: HC2L query time and avg cut size vs balance threshold "
      "===\n\n");
  TablePrinter time_table({"Dataset", "t(0.15)", "t(0.20)", "t(0.25)",
                           "t(0.30)", "t(0.35)"});
  TablePrinter cut_table({"Dataset", "c(0.15)", "c(0.20)", "c(0.25)",
                          "c(0.30)", "c(0.35)"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kDistance)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    const auto pairs =
        UniformRandomPairs(g.NumVertices(), BenchQueryCount() / 2, 11);
    std::vector<std::string> time_row{spec.name};
    std::vector<std::string> cut_row{spec.name};
    for (const double beta : kBetas) {
      BuildOptions options;
      options.beta = beta;
      const Result<Router> index = Router::Build(g, options);
      if (!index.ok()) return 1;
      time_row.push_back(FormatMicros(MeasureAvgQueryMicros(
          [&](Vertex s, Vertex t) { return index->DistanceUnchecked(s, t); },
          pairs)));
      cut_row.push_back(FormatDouble(index->Info().avg_cut_size, 1));
    }
    time_table.AddRow(std::move(time_row));
    cut_table.AddRow(std::move(cut_row));
    std::fflush(stdout);
  }
  std::printf("(a/b) Average query time [us]:\n");
  time_table.Print();
  std::printf("\n(c/d) Average cut size:\n");
  cut_table.Print();
  return 0;
}
