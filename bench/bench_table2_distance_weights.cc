// Reproduces Table 2: query times, labelling sizes and construction times
// with *distances* as edge weights, for HC2L / HC2L_p / H2H / PHL / HL.

#include "bench_table_common.h"

int main() {
  hc2l::RunMainComparisonTable(
      hc2l::WeightMode::kDistance,
      "Table 2: query time / labelling size / construction time "
      "(distance weights)");
  return 0;
}
