// Parallel query scaling bench: DistanceMatrix / BatchQuery / PointQueries
// throughput at 1/2/4/8 engine threads over the shared 48x48 fixture graph
// (the bench_micro_query dataset), plus the single-threaded
// engine-vs-facade overhead check. Runs through the public facade
// (hc2l::Router::WithThreads), the same surface a serving front end uses.
//
// The scaling curve is merged into BENCH_query.json (override the path with
// HC2L_BENCH_JSON) as a "parallel" section so the perf trajectory carries
// both the single-query latency and the bulk-throughput story. The JSON is
// our own fixed format: any existing "parallel" section is replaced. The
// section carries an "api" tag ("router") so tools/check_bench.py can tell
// facade-produced numbers from pre-facade ("core") snapshots.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "benchsupport/workload.h"
#include "common/simd.h"
#include "hc2l/hc2l.h"

namespace hc2l {
namespace {

constexpr uint32_t kThreadCounts[] = {1, 2, 4, 8};

struct MatrixResult {
  double ns_per_pair = 0.0;
  uint64_t checksum = 0;  // all runs must agree (determinism)
};

/// Repeats engine.DistanceMatrix until ~min_seconds elapsed; ns per (s, t)
/// pair.
MatrixResult TimeMatrix(const ThreadedRouter& engine,
                        const std::vector<Vertex>& sources,
                        const std::vector<Vertex>& targets,
                        double min_seconds) {
  MatrixResult result;
  const size_t pairs_per_round = sources.size() * targets.size();
  size_t rounds = 0;
  Timer timer;
  do {
    const auto matrix = engine.DistanceMatrix(sources, targets);
    if (!matrix.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", matrix.status().ToString().c_str());
      std::exit(1);
    }
    uint64_t sum = 0;
    for (const auto& row : *matrix) {
      for (const Dist d : row) sum += d == kInfDist ? 1 : d;
    }
    if (rounds == 0) {
      result.checksum = sum;
    } else if (result.checksum != sum) {
      std::fprintf(stderr, "FATAL: non-deterministic matrix checksum\n");
      std::exit(1);
    }
    ++rounds;
  } while (timer.Seconds() < min_seconds);
  result.ns_per_pair =
      timer.Seconds() * 1e9 / static_cast<double>(rounds * pairs_per_round);
  return result;
}

double TimeBatch(const ThreadedRouter& engine,
                 const std::vector<Vertex>& sources,
                 const std::vector<Vertex>& targets, double min_seconds) {
  size_t rounds = 0;
  size_t i = 0;
  Timer timer;
  do {
    const auto out = engine.BatchQuery(sources[i % sources.size()], targets);
    if (!out.ok() || out->empty()) std::exit(1);
    ++i;
    ++rounds;
  } while (timer.Seconds() < min_seconds);
  return timer.Seconds() * 1e9 / static_cast<double>(rounds * targets.size());
}

double TimePoints(const ThreadedRouter& engine,
                  const std::vector<QueryPair>& pairs, double min_seconds) {
  size_t rounds = 0;
  Timer timer;
  do {
    const auto out = engine.PointQueries(pairs);
    if (!out.ok() || out->empty()) std::exit(1);
    ++rounds;
  } while (timer.Seconds() < min_seconds);
  return timer.Seconds() * 1e9 / static_cast<double>(rounds * pairs.size());
}

/// Splices `section` into an existing BENCH_query.json (replacing any prior
/// "parallel" section) or starts a fresh file.
void MergeIntoBenchJson(const std::string& path, const std::string& section) {
  std::string existing;
  if (std::FILE* f = std::fopen(path.c_str(), "rb"); f != nullptr) {
    char buf[4096];
    size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      existing.append(buf, got);
    }
    std::fclose(f);
  }
  // Drop a previously merged parallel section (it is always the last key).
  const size_t marker = existing.find(",\n  \"parallel\":");
  if (marker != std::string::npos) {
    existing.resize(marker);
    existing += "\n}\n";
  }
  std::string out;
  const size_t close = existing.rfind('}');
  if (close == std::string::npos) {
    out = "{\n  \"bench\": \"parallel_query\"" + section + "\n}\n";
  } else {
    // Re-close the object with the parallel section appended.
    out = existing.substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
    out += section + "\n}\n";
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

int Run() {
  RoadNetworkOptions opt;
  opt.rows = 48;
  opt.cols = 48;
  opt.seed = 2026;
  const Graph g = GenerateRoadNetwork(opt);
  const Result<Router> router = Router::Build(g, BuildOptions{});
  if (!router.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", router.status().ToString().c_str());
    return 1;
  }

  // Workloads: a 48x48 distance matrix (the acceptance fixture), a 4096-way
  // batch and 4096 random point pairs.
  const auto pairs = UniformRandomPairs(g.NumVertices(), 4096, 9);
  std::vector<Vertex> matrix_sources;
  std::vector<Vertex> matrix_targets;
  for (size_t i = 0; i < 48; ++i) {
    matrix_sources.push_back(pairs[i].first);
    matrix_targets.push_back(pairs[i].second);
  }
  std::vector<Vertex> batch_targets;
  batch_targets.reserve(pairs.size());
  for (const auto& [s, t] : pairs) batch_targets.push_back(t);
  std::vector<Vertex> batch_sources;
  for (size_t i = 0; i < 64; ++i) batch_sources.push_back(pairs[i].first);

  const double min_seconds =
      std::getenv("HC2L_BENCH_FAST") != nullptr ? 0.05 : 0.4;

  std::printf("parallel queries (hc2l::Router facade) on %zu vertices, "
              "kernel %s, %u hardware threads\n\n",
              g.NumVertices(), simd::kKernelName,
              std::thread::hardware_concurrency());
  std::printf("%8s %18s %18s %18s\n", "threads", "matrix 48x48", "batch 4096",
              "points 4096");
  std::printf("%8s %18s %18s %18s\n", "", "[ns/pair]", "[ns/target]",
              "[ns/query]");

  std::string curve;
  double matrix_1t = 0.0;
  double matrix_best = 0.0;
  uint64_t checksum = 0;
  for (const uint32_t threads : kThreadCounts) {
    ParallelOptions options;
    options.num_threads = threads;
    // The fixture workloads are small; let every thread take a share.
    options.min_shard_queries = 64;
    const Result<ThreadedRouter> engine = router->WithThreads(options);
    if (!engine.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", engine.status().ToString().c_str());
      return 1;
    }

    const MatrixResult m =
        TimeMatrix(*engine, matrix_sources, matrix_targets, min_seconds);
    const double b = TimeBatch(*engine, batch_sources, batch_targets,
                               min_seconds);
    const double p = TimePoints(*engine, pairs, min_seconds);
    if (threads == 1) {
      matrix_1t = m.ns_per_pair;
      checksum = m.checksum;
    } else if (checksum != m.checksum) {
      std::fprintf(stderr, "FATAL: thread-count-dependent matrix result\n");
      return 1;
    }
    matrix_best = matrix_best == 0.0 ? m.ns_per_pair
                                     : std::min(matrix_best, m.ns_per_pair);
    std::printf("%8u %18.2f %18.2f %18.2f\n", threads, m.ns_per_pair, b, p);

    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "%s\n    {\"threads\": %u, \"matrix_ns_per_pair\": %.2f, "
                  "\"batch_ns_per_target\": %.2f, \"point_ns_per_query\": "
                  "%.2f}",
                  curve.empty() ? "" : ",", threads, m.ns_per_pair, b, p);
    curve += entry;
  }

  const double speedup = matrix_best > 0.0 ? matrix_1t / matrix_best : 0.0;
  std::printf("\nbest matrix speedup vs 1 thread: %.2fx "
              "(on %u hardware threads)\n",
              speedup, std::thread::hardware_concurrency());

  char head[192];
  std::snprintf(head, sizeof(head),
                ",\n  \"parallel\": {\n"
                "    \"api\": \"router\",\n"
                "    \"hardware_threads\": %u,\n"
                "    \"matrix_speedup_best\": %.2f,\n"
                "    \"curve\": [",
                std::thread::hardware_concurrency(), speedup);
  const std::string section = std::string(head) + curve + "]\n  }";

  const char* json = std::getenv("HC2L_BENCH_JSON");
  const std::string path = json != nullptr ? json : "BENCH_query.json";
  MergeIntoBenchJson(path, section);
  std::printf("merged parallel section into %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace hc2l

int main() { return hc2l::Run(); }
