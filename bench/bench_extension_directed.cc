// Extension bench (Section 5.3): directed graphs. One-way streets are added
// to the synthetic networks; the directed index stores two distance arrays
// per label level (out/in). The paper predicts roughly doubled labels on
// almost-undirected networks and unchanged query behaviour. Both flavours
// are built through the same hc2l::Router facade — the overload picks the
// index from the graph type.
//
// The bench also quantifies the ported degree-one contraction: every
// dataset is built with contraction on and off, reporting the label-count
// and construction-time reduction from stripping pendant chains (the
// generator attaches them via pendant_frac, mirroring DIMACS road graphs).

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "hc2l/hc2l.h"

int main() {
  using namespace hc2l;
  std::printf(
      "=== Extension: directed HC2L (Section 5.3), 20%% one-way streets, "
      "degree-one contraction on/off ===\n\n");
  TablePrinter table({"Dataset", "arcs", "core |V|", "build[s]",
                      "build[s] noc", "S directed", "S noc", "Q[us]",
                      "Q[us] noc", "asym pairs"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kTravelTime)) {
    const Digraph g = GenerateDirectedRoadNetwork(spec.options, 0.2);
    const Result<Router> index = Router::Build(g);
    if (!index.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", index.status().ToString().c_str());
      return 1;
    }
    BuildOptions no_contraction;
    no_contraction.contract_degree_one = false;
    const Result<Router> full = Router::Build(g, no_contraction);
    if (!full.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", full.status().ToString().c_str());
      return 1;
    }

    const auto pairs =
        UniformRandomPairs(g.NumVertices(), BenchQueryCount() / 5, 3);
    const double q = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return index->DistanceUnchecked(s, t); },
        pairs);
    const double q_full = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return full->DistanceUnchecked(s, t); },
        pairs);
    // How directional is the metric? Count pairs with d(s,t) != d(t,s).
    Rng rng(17);
    int asym = 0;
    const int probes = 2000;
    for (int i = 0; i < probes; ++i) {
      const Vertex s = static_cast<Vertex>(rng.Below(g.NumVertices()));
      const Vertex t = static_cast<Vertex>(rng.Below(g.NumVertices()));
      if (index->DistanceUnchecked(s, t) != index->DistanceUnchecked(t, s)) {
        ++asym;
      }
    }
    table.AddRow({spec.name, std::to_string(g.NumArcs()),
                  std::to_string(index->Info().num_core_vertices) + "/" +
                      std::to_string(index->Info().num_vertices),
                  FormatSeconds(index->Info().build_seconds),
                  FormatSeconds(full->Info().build_seconds),
                  FormatBytes(index->Info().label_resident_bytes),
                  FormatBytes(full->Info().label_resident_bytes),
                  FormatMicros(q), FormatMicros(q_full),
                  FormatDouble(100.0 * asym / probes, 1) + "%"});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: contraction strips the pendant share of "
      "vertices from the hierarchy (\"noc\" columns are the uncontracted "
      "baseline), shrinking labels and construction time; query latency "
      "comparable.\n");
  return 0;
}
