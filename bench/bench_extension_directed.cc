// Extension bench (Section 5.3): directed graphs. One-way streets are added
// to the synthetic networks; the directed index stores two distance arrays
// per label level (out/in). The paper predicts roughly doubled labels on
// almost-undirected networks and unchanged query behaviour.

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/directed_hc2l.h"
#include "core/hc2l.h"
#include "graph/digraph.h"

int main() {
  using namespace hc2l;
  std::printf(
      "=== Extension: directed HC2L (Section 5.3), 20%% one-way streets "
      "===\n\n");
  TablePrinter table({"Dataset", "arcs", "build[s]", "S directed",
                      "S undirected", "Q directed[us]", "asym pairs"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kTravelTime)) {
    const Digraph g = GenerateDirectedRoadNetwork(spec.options, 0.2);
    Timer timer;
    const DirectedHc2lIndex index = DirectedHc2lIndex::Build(g);
    const double build = timer.Seconds();

    const Graph undirected = GenerateRoadNetwork(spec.options);
    Hc2lOptions uopt;
    uopt.contract_degree_one = false;  // match the directed variant
    const Hc2lIndex undirected_index = Hc2lIndex::Build(undirected, uopt);

    const auto pairs =
        UniformRandomPairs(g.NumVertices(), BenchQueryCount() / 5, 3);
    const double q = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return index.Query(s, t); }, pairs);
    // How directional is the metric? Count pairs with d(s,t) != d(t,s).
    Rng rng(17);
    int asym = 0;
    const int probes = 2000;
    for (int i = 0; i < probes; ++i) {
      const Vertex s = static_cast<Vertex>(rng.Below(g.NumVertices()));
      const Vertex t = static_cast<Vertex>(rng.Below(g.NumVertices()));
      if (index.Query(s, t) != index.Query(t, s)) ++asym;
    }
    table.AddRow({spec.name, std::to_string(g.NumArcs()),
                  FormatSeconds(build), FormatBytes(index.LabelSizeBytes()),
                  FormatBytes(undirected_index.LabelSizeBytes()),
                  FormatMicros(q),
                  FormatDouble(100.0 * asym / probes, 1) + "%"});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: directed labels ~2x the undirected size "
      "(two arrays per level); query latency comparable.\n");
  return 0;
}
