// Extension bench (Section 5.3): directed graphs. One-way streets are added
// to the synthetic networks; the directed index stores two distance arrays
// per label level (out/in). The paper predicts roughly doubled labels on
// almost-undirected networks and unchanged query behaviour. Both flavours
// are built through the same hc2l::Router facade — the overload picks the
// index from the graph type.

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "hc2l/hc2l.h"

int main() {
  using namespace hc2l;
  std::printf(
      "=== Extension: directed HC2L (Section 5.3), 20%% one-way streets "
      "===\n\n");
  TablePrinter table({"Dataset", "arcs", "build[s]", "S directed",
                      "S undirected", "Q directed[us]", "asym pairs"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kTravelTime)) {
    const Digraph g = GenerateDirectedRoadNetwork(spec.options, 0.2);
    const Result<Router> index = Router::Build(g);
    if (!index.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", index.status().ToString().c_str());
      return 1;
    }
    const double build = index->Info().build_seconds;

    const Graph undirected = GenerateRoadNetwork(spec.options);
    BuildOptions uopt;
    uopt.contract_degree_one = false;  // match the directed variant
    const Result<Router> undirected_index = Router::Build(undirected, uopt);
    if (!undirected_index.ok()) return 1;

    const auto pairs =
        UniformRandomPairs(g.NumVertices(), BenchQueryCount() / 5, 3);
    const double q = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return index->DistanceUnchecked(s, t); },
        pairs);
    // How directional is the metric? Count pairs with d(s,t) != d(t,s).
    Rng rng(17);
    int asym = 0;
    const int probes = 2000;
    for (int i = 0; i < probes; ++i) {
      const Vertex s = static_cast<Vertex>(rng.Below(g.NumVertices()));
      const Vertex t = static_cast<Vertex>(rng.Below(g.NumVertices()));
      if (index->DistanceUnchecked(s, t) != index->DistanceUnchecked(t, s)) {
        ++asym;
      }
    }
    table.AddRow({spec.name, std::to_string(g.NumArcs()),
                  FormatSeconds(build),
                  FormatBytes(index->Info().label_resident_bytes),
                  FormatBytes(undirected_index->Info().label_resident_bytes),
                  FormatMicros(q),
                  FormatDouble(100.0 * asym / probes, 1) + "%"});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: directed labels ~2x the undirected size "
      "(two arrays per level); query latency comparable.\n");
  return 0;
}
