// Ablation from Section 4.2.2: degree-one contraction. The paper reports
// iterated contraction removes ~30% of vertices on DIMACS graphs (vs ~20%
// for PHL's single-pass variant); synthetic lattices have fewer pendants,
// so the rate is lower here, but the size/time trade-off shape holds.
// Runs through the public facade (hc2l::Router).

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "hc2l/hc2l.h"

int main() {
  using namespace hc2l;
  std::printf("=== Ablation: degree-one contraction on/off ===\n\n");
  TablePrinter table({"Dataset", "contracted", "rate", "S on", "S off",
                      "build on[s]", "build off[s]", "Q on[us]", "Q off[us]"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kDistance)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    BuildOptions with;
    with.contract_degree_one = true;
    BuildOptions without;
    without.contract_degree_one = false;
    const Result<Router> on = Router::Build(g, with);
    const Result<Router> off = Router::Build(g, without);
    if (!on.ok() || !off.ok()) return 1;
    const auto pairs =
        UniformRandomPairs(g.NumVertices(), BenchQueryCount() / 2, 33);
    const double q_on = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return on->DistanceUnchecked(s, t); }, pairs);
    const double q_off = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return off->DistanceUnchecked(s, t); },
        pairs);
    const IndexInfo on_info = on->Info();
    const IndexInfo off_info = off->Info();
    const double rate = 100.0 * static_cast<double>(on_info.num_contracted) /
                        static_cast<double>(g.NumVertices());
    table.AddRow({spec.name, std::to_string(on_info.num_contracted),
                  FormatDouble(rate, 1) + "%",
                  FormatBytes(on_info.label_resident_bytes),
                  FormatBytes(off_info.label_resident_bytes),
                  FormatSeconds(on_info.build_seconds),
                  FormatSeconds(off_info.build_seconds),
                  FormatMicros(q_on), FormatMicros(q_off)});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
