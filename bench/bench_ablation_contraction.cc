// Ablation from Section 4.2.2: degree-one contraction. The paper reports
// iterated contraction removes ~30% of vertices on DIMACS graphs (vs ~20%
// for PHL's single-pass variant); synthetic lattices have fewer pendants,
// so the rate is lower here, but the size/time trade-off shape holds.

#include <cstdio>

#include "benchsupport/evaluation.h"
#include "benchsupport/table_printer.h"
#include "benchsupport/workload.h"
#include "core/hc2l.h"

int main() {
  using namespace hc2l;
  std::printf("=== Ablation: degree-one contraction on/off ===\n\n");
  TablePrinter table({"Dataset", "contracted", "rate", "S on", "S off",
                      "build on[s]", "build off[s]", "Q on[us]", "Q off[us]"});
  for (const DatasetSpec& spec : SelectedDatasets(WeightMode::kDistance)) {
    const Graph g = GenerateRoadNetwork(spec.options);
    Hc2lOptions with;
    with.contract_degree_one = true;
    Hc2lOptions without;
    without.contract_degree_one = false;
    const Hc2lIndex on = Hc2lIndex::Build(g, with);
    const Hc2lIndex off = Hc2lIndex::Build(g, without);
    const auto pairs =
        UniformRandomPairs(g.NumVertices(), BenchQueryCount() / 2, 33);
    const double q_on = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return on.Query(s, t); }, pairs);
    const double q_off = MeasureAvgQueryMicros(
        [&](Vertex s, Vertex t) { return off.Query(s, t); }, pairs);
    const double rate = 100.0 *
                        static_cast<double>(on.Stats().num_contracted) /
                        static_cast<double>(g.NumVertices());
    table.AddRow({spec.name, std::to_string(on.Stats().num_contracted),
                  FormatDouble(rate, 1) + "%",
                  FormatBytes(on.LabelSizeBytes()),
                  FormatBytes(off.LabelSizeBytes()),
                  FormatSeconds(on.Stats().build_seconds),
                  FormatSeconds(off.Stats().build_seconds),
                  FormatMicros(q_on), FormatMicros(q_off)});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
