#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_query.json.

Compares a freshly emitted snapshot against the committed one and fails on
regressions beyond a threshold (default 25%). Two tiers:

- The dimensionless simd-vs-scalar kernel speedup ratio gates on every
  runner whose SIMD kernel matches the committed snapshot's.
- Absolute nanosecond numbers (point/batch/kernel) additionally gate when
  the (CPU model, host name) pair also matches — they are not comparable
  across machines, and virtualized CPU strings alone don't identify one.

Everything is skipped — with an explanation, exit 0 — when the two snapshots
were produced by different SIMD kernels (e.g. a non-AVX2 CI runner measuring
against an AVX2-recorded baseline).

Usage:
  tools/check_bench.py --fresh build/BENCH_query.json \
      --committed BENCH_query.json [--threshold 0.25]
"""

import argparse
import json
import sys

# (human name, path into the JSON object) of every gated metric; lower is
# better for all of them.
GATED_METRICS = [
    ("point query ns", ("ns_per_query",)),
    ("batch target ns", ("ns_per_batch_target",)),
    ("kernel simd ns", ("kernel_len128_ns", "simd")),
    ("kernel scalar ns", ("kernel_len128_ns", "scalar")),
]


def lookup(obj, path):
    for key in path:
        if not isinstance(obj, dict) or key not in obj:
            return None
        obj = obj[key]
    return obj if isinstance(obj, (int, float)) else None


def kernel_speedup(snapshot):
    """Scalar-over-simd kernel time ratio; None if either is missing."""
    simd = lookup(snapshot, ("kernel_len128_ns", "simd"))
    scalar = lookup(snapshot, ("kernel_len128_ns", "scalar"))
    if simd is None or scalar is None or simd <= 0:
        return None
    return scalar / simd


def directed_entry_ratio(snapshot):
    """Contracted-over-uncontracted directed label-entry ratio.

    Builds are deterministic, so the ratio is CPU-independent (like the
    kernel speedup) and gates on every runner: a regression means the
    degree-one contraction stopped stripping pendant chains (or the
    uncontracted baseline shrank without the contracted path following).
    Returns None when the "directed" section is missing on either side —
    sections are append-only, mirroring the per-dataset policy.
    """
    contracted = lookup(snapshot, ("directed", "contracted", "label_entries"))
    uncontracted = lookup(
        snapshot, ("directed", "uncontracted", "label_entries"))
    if contracted is None or uncontracted is None or uncontracted <= 0:
        return None
    return contracted / uncontracted


def update_ratio_datasets(snapshot):
    """Per-dataset recomputed/total label-entry ratio of the scoped repair.

    The scoped repair walk is deterministic in (graph, delta batch), so the
    ratio is CPU-independent and gates on every runner: a regression means
    the repair stopped cutting the walk off at clean subtrees (drifting back
    toward a full rebuild). Returns {} when the "update_latency" section is
    missing — sections are append-only, mirroring the per-dataset policy.
    """
    section = snapshot.get("update_latency")
    if not isinstance(section, dict):
        return {}
    datasets = section.get("datasets")
    if not isinstance(datasets, dict):
        return {}
    out = {}
    for name, entry in datasets.items():
        ratio = lookup(entry, ("repair_ratio",))
        if ratio is not None:
            out[name] = (ratio, entry.get("scoped"))
    return out


def parallel_threads(snapshot):
    return lookup(snapshot, ("parallel", "hardware_threads"))


# Hard floor on the server_load section's coalesced-over-uncoalesced point
# throughput ratio. Both runs serve the identical request sequence back to
# back on the same machine, so the ratio is CPU-independent: request
# coalescing must never LOSE throughput against per-request execution, and
# a ratio under 1.0 means the reactor's batch merge stopped engaging (or
# started costing more than the engine dispatch it amortizes).
COALESCE_RATIO_FLOOR = 1.0

# Hard floor on the mmap-vs-heap cold-open speedup of the large_graph
# section. The mapped open parses only the section table and the small
# metadata section while the heap open copies and scans every label byte,
# so the ratio is structural: it cannot erode to single digits without the
# mmap path having regressed to copying (or the heap path to mapping).
OPEN_SPEEDUP_FLOOR = 10.0


def api_tag(snapshot):
    """Which API produced the snapshot's end-to-end numbers.

    Benches migrated to the hc2l::Router facade tag their sections with
    "api": "router"; pre-facade snapshots carry no tag and count as "core".
    Absolute nanosecond numbers measured through different API layers are
    not comparable (the facade adds dispatch/validation around the hot
    calls), so a tag mismatch skips them — same policy as a machine
    mismatch. The JSON keys themselves are unchanged by the migration.
    """
    tag = snapshot.get("api")
    if tag is None and isinstance(snapshot.get("parallel"), dict):
        tag = snapshot["parallel"].get("api")
    return tag if tag is not None else "core"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="snapshot emitted by this run")
    parser.add_argument("--committed", required=True,
                        help="snapshot committed in the repo")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args()

    try:
        with open(args.fresh) as f:
            fresh = json.load(f)
        with open(args.committed) as f:
            committed = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot load snapshots ({e}); failing")
        return 1

    fresh_kernel = fresh.get("kernel")
    committed_kernel = committed.get("kernel")
    if fresh_kernel != committed_kernel:
        print(f"check_bench: SKIP — kernel mismatch (fresh={fresh_kernel!r}, "
              f"committed={committed_kernel!r}); numbers not comparable on "
              f"this runner")
        return 0
    failures = []

    # CPU-independent gate, always active: the simd-vs-scalar kernel speedup
    # is dimensionless, so it survives runner changes. A kernel regression
    # (or a scalar "improvement" that really means the simd path stopped
    # engaging) collapses this ratio.
    fresh_speedup = kernel_speedup(fresh)
    committed_speedup = kernel_speedup(committed)
    if fresh_speedup is not None and committed_speedup is not None:
        ratio = fresh_speedup / committed_speedup
        verdict = "OK" if ratio >= 1.0 - args.threshold else "REGRESSION"
        print(f"check_bench: kernel simd speedup: "
              f"committed={committed_speedup:.2f}x fresh={fresh_speedup:.2f}x "
              f"ratio={ratio:.2f} {verdict}")
        if verdict != "OK":
            failures.append("kernel simd speedup")
    else:
        print("check_bench: kernel simd speedup: missing in a snapshot, "
              "skipped")

    # Second CPU-independent gate: the directed index's contraction must
    # keep delivering its label-count reduction. Lower is better; a fresh
    # ratio beyond the committed one by more than the threshold fails.
    fresh_ratio = directed_entry_ratio(fresh)
    committed_ratio = directed_entry_ratio(committed)
    if fresh_ratio is not None and committed_ratio is not None \
            and committed_ratio > 0:
        rel = fresh_ratio / committed_ratio
        verdict = "OK" if rel <= 1.0 + args.threshold else "REGRESSION"
        print(f"check_bench: directed contraction entry ratio: "
              f"committed={committed_ratio:.3f} fresh={fresh_ratio:.3f} "
              f"rel={rel:.2f} {verdict}")
        if verdict != "OK":
            failures.append("directed contraction entry ratio")
    else:
        print("check_bench: directed contraction entry ratio: missing in a "
              "snapshot, skipped")

    # Third CPU-independent gate: the scoped label repair must keep reusing
    # clean subtrees. The ratio is per dataset and deterministic; a fresh
    # ratio beyond the committed one by more than the threshold fails. A
    # repair that silently degraded to a full rebuild fails outright.
    fresh_upd = update_ratio_datasets(fresh)
    committed_upd = update_ratio_datasets(committed)
    if not fresh_upd or not committed_upd:
        missing_in = "fresh" if not fresh_upd else "committed"
        print(f"check_bench: update repair ratio: update_latency section "
              f"not in the {missing_in} snapshot, skipped")
    else:
        for name in sorted(set(fresh_upd) & set(committed_upd)):
            fresh_r, fresh_scoped = fresh_upd[name]
            committed_r, _ = committed_upd[name]
            if fresh_scoped is False:
                print(f"check_bench: update repair ratio {name!r}: fresh "
                      f"repair fell back to a FULL REBUILD")
                failures.append(f"update_latency.{name}.scoped")
                continue
            if committed_r <= 0:
                continue
            rel = fresh_r / committed_r
            verdict = "OK" if rel <= 1.0 + args.threshold else "REGRESSION"
            print(f"check_bench: update repair ratio {name!r}: "
                  f"committed={committed_r:.3f} fresh={fresh_r:.3f} "
                  f"rel={rel:.2f} {verdict}")
            if verdict != "OK":
                failures.append(f"update_latency.{name}.repair_ratio")

    # The parallel matrix speedup is dimensionless but needs actual cores to
    # mean anything: on a single-hardware-thread runner the best speedup is
    # ~1.0 by construction, and differing core counts aren't comparable
    # either. Gate only when both snapshots saw the same multi-core width.
    fresh_threads = parallel_threads(fresh)
    committed_threads = parallel_threads(committed)
    fresh_par = lookup(fresh, ("parallel", "matrix_speedup_best"))
    committed_par = lookup(committed, ("parallel", "matrix_speedup_best"))
    if fresh_par is None or committed_par is None or committed_par <= 0:
        print("check_bench: parallel matrix speedup: missing in a snapshot, "
              "skipped")
    elif fresh_threads == 1 or committed_threads == 1:
        print(f"check_bench: parallel matrix speedup: SKIP — a snapshot was "
              f"recorded on a single-hardware-thread runner "
              f"(fresh={fresh_threads!r}, committed={committed_threads!r}); "
              f"no parallelism to gate")
    elif fresh_threads != committed_threads:
        print(f"check_bench: parallel matrix speedup: SKIP — hardware "
              f"thread counts differ (fresh={fresh_threads!r}, "
              f"committed={committed_threads!r}); speedups not comparable")
    else:
        rel = fresh_par / committed_par
        verdict = "OK" if rel >= 1.0 - args.threshold else "REGRESSION"
        print(f"check_bench: parallel matrix speedup: "
              f"committed={committed_par:.2f}x fresh={fresh_par:.2f}x "
              f"rel={rel:.2f} {verdict}")
        if verdict != "OK":
            failures.append("parallel matrix speedup")

    # Fourth CPU-independent gate: the large_graph section's cold-open
    # speedup. Both opens run back to back on the same machine and file, so
    # the ratio survives runner changes; it gates against a hard floor (the
    # mmap open must stay an order of magnitude ahead of the heap
    # deserialize) and against the committed ratio. Loudly skipped — never
    # failed — when the section is missing on either side.
    fresh_lg = fresh.get("large_graph")
    committed_lg = committed.get("large_graph")
    fresh_open = lookup(fresh_lg if isinstance(fresh_lg, dict) else {},
                        ("open_speedup",))
    committed_open = lookup(
        committed_lg if isinstance(committed_lg, dict) else {},
        ("open_speedup",))
    if not isinstance(fresh_lg, dict) or not isinstance(committed_lg, dict):
        missing_in = "fresh" if not isinstance(fresh_lg, dict) else "committed"
        print(f"check_bench: large_graph section: not in the {missing_in} "
              f"snapshot, skipped")
    elif fresh_open is None or committed_open is None or committed_open <= 0:
        print("check_bench: large_graph open speedup: missing in a snapshot, "
              "skipped")
    else:
        rel = fresh_open / committed_open
        verdict = "OK"
        if fresh_open < OPEN_SPEEDUP_FLOOR:
            verdict = f"BELOW FLOOR ({OPEN_SPEEDUP_FLOOR:.0f}x)"
        elif rel < 1.0 - args.threshold:
            verdict = "REGRESSION"
        print(f"check_bench: large_graph open speedup: "
              f"committed={committed_open:.1f}x fresh={fresh_open:.1f}x "
              f"rel={rel:.2f} {verdict}")
        if verdict != "OK":
            failures.append("large_graph.open_speedup")

    # Fifth CPU-independent gate: the server_load section's coalesce ratio,
    # gated against a hard floor (coalescing must not lose throughput; see
    # COALESCE_RATIO_FLOOR) and against the committed ratio. Loudly skipped
    # — never failed — when the section is missing on either side.
    fresh_sl = fresh.get("server_load")
    committed_sl = committed.get("server_load")
    fresh_cr = lookup(fresh_sl if isinstance(fresh_sl, dict) else {},
                      ("coalesce_ratio",))
    committed_cr = lookup(
        committed_sl if isinstance(committed_sl, dict) else {},
        ("coalesce_ratio",))
    if not isinstance(fresh_sl, dict) or not isinstance(committed_sl, dict):
        missing_in = "fresh" if not isinstance(fresh_sl, dict) else "committed"
        print(f"check_bench: server_load section: not in the {missing_in} "
              f"snapshot, skipped")
    elif fresh_cr is None or committed_cr is None or committed_cr <= 0:
        print("check_bench: server_load coalesce ratio: missing in a "
              "snapshot, skipped")
    else:
        rel = fresh_cr / committed_cr
        verdict = "OK"
        if fresh_cr < COALESCE_RATIO_FLOOR:
            verdict = f"BELOW FLOOR ({COALESCE_RATIO_FLOOR:.1f}x)"
        elif rel < 1.0 - args.threshold:
            verdict = "REGRESSION"
        print(f"check_bench: server_load coalesce ratio: "
              f"committed={committed_cr:.2f}x fresh={fresh_cr:.2f}x "
              f"rel={rel:.2f} {verdict}")
        if verdict != "OK":
            failures.append("server_load.coalesce_ratio")

    # Absolute nanosecond timings are only comparable on the machine that
    # recorded the snapshot. CPU model alone is a weak proxy (hypervisors
    # report generic strings like "Intel(R) Xeon(R) Processor @ 2.10GHz" on
    # very different hosts), so the host name must match too. They must
    # also have been measured through the same API layer (see api_tag).
    fresh_machine = (fresh.get("cpu"), fresh.get("host"))
    committed_machine = (committed.get("cpu"), committed.get("host"))
    skip_reason = None
    if fresh_machine != committed_machine or None in fresh_machine:
        skip_reason = (f"machine mismatch (fresh={fresh_machine!r}, "
                       f"committed={committed_machine!r})")
    elif api_tag(fresh) != api_tag(committed):
        skip_reason = (f"API mismatch (fresh={api_tag(fresh)!r}, "
                       f"committed={api_tag(committed)!r})")
    if skip_reason is not None:
        print(f"check_bench: absolute timings SKIPPED — {skip_reason}; "
              f"only the speedup-ratio gate applies on this runner")
        if failures:
            print("check_bench: FAILED — " + ", ".join(failures))
            return 1
        return 0

    for name, path in GATED_METRICS:
        fresh_v = lookup(fresh, path)
        committed_v = lookup(committed, path)
        if fresh_v is None or committed_v is None or committed_v <= 0:
            print(f"check_bench: {name}: missing in a snapshot, skipped")
            continue
        ratio = fresh_v / committed_v
        verdict = "OK" if ratio <= 1.0 + args.threshold else "REGRESSION"
        print(f"check_bench: {name}: committed={committed_v:.2f} "
              f"fresh={fresh_v:.2f} ratio={ratio:.2f} {verdict}")
        if verdict != "OK":
            failures.append(name)

    # Per-dataset sections of the multi-dataset trajectory. Datasets are
    # append-only: one present on only one side (an old snapshot predating a
    # new fixture, or a retired fixture) is noted and skipped, never failed.
    fresh_ds = fresh.get("datasets")
    committed_ds = committed.get("datasets")
    fresh_ds = fresh_ds if isinstance(fresh_ds, dict) else {}
    committed_ds = committed_ds if isinstance(committed_ds, dict) else {}
    for name in sorted(set(fresh_ds) | set(committed_ds)):
        if name not in fresh_ds or name not in committed_ds:
            missing_in = "fresh" if name not in fresh_ds else "committed"
            print(f"check_bench: dataset {name!r}: not in the {missing_in} "
                  f"snapshot, skipped")
            continue
        for metric in ("ns_per_query", "ns_per_batch_target"):
            fresh_v = lookup(fresh_ds[name], (metric,))
            committed_v = lookup(committed_ds[name], (metric,))
            if fresh_v is None or committed_v is None or committed_v <= 0:
                print(f"check_bench: dataset {name!r} {metric}: missing in a "
                      f"snapshot, skipped")
                continue
            ratio = fresh_v / committed_v
            verdict = "OK" if ratio <= 1.0 + args.threshold else "REGRESSION"
            print(f"check_bench: dataset {name!r} {metric}: "
                  f"committed={committed_v:.2f} fresh={fresh_v:.2f} "
                  f"ratio={ratio:.2f} {verdict}")
            if verdict != "OK":
                failures.append(f"{name}.{metric}")

    # The directed section's absolute timings, gated exactly like a dataset
    # section: machine-matched, skipped (never failed) when the section is
    # missing on either side.
    fresh_dir = fresh.get("directed")
    committed_dir = committed.get("directed")
    if isinstance(fresh_dir, dict) and isinstance(committed_dir, dict):
        for config in ("contracted", "uncontracted"):
            fresh_v = lookup(fresh_dir, (config, "ns_per_query"))
            committed_v = lookup(committed_dir, (config, "ns_per_query"))
            if fresh_v is None or committed_v is None or committed_v <= 0:
                print(f"check_bench: directed {config} ns_per_query: missing "
                      f"in a snapshot, skipped")
                continue
            ratio = fresh_v / committed_v
            verdict = "OK" if ratio <= 1.0 + args.threshold else "REGRESSION"
            print(f"check_bench: directed {config} ns_per_query: "
                  f"committed={committed_v:.2f} fresh={fresh_v:.2f} "
                  f"ratio={ratio:.2f} {verdict}")
            if verdict != "OK":
                failures.append(f"directed.{config}.ns_per_query")
    else:
        missing_in = "fresh" if not isinstance(fresh_dir, dict) \
            else "committed"
        print(f"check_bench: directed section: not in the {missing_in} "
              f"snapshot, skipped")

    # The route-unpacking section: ns per unpacked edge for both flavours,
    # machine-matched like every other absolute timing, skipped (never
    # failed) when the section is missing on either side. A whole route on
    # grid48 is only ~2-4 us, so even the bench's best-of-3 shows ~±15%
    # run-to-run jitter on a shared box — the route gate therefore uses a
    # 60% threshold (a real regression, e.g. losing the hint walk to the
    # Dijkstra fallback, is ~100x, not 1.6x).
    route_threshold = max(args.threshold, 0.60)
    fresh_route = fresh.get("route")
    committed_route = committed.get("route")
    if isinstance(fresh_route, dict) and isinstance(committed_route, dict):
        for flavour in ("undirected", "directed"):
            for metric in ("ns_per_edge", "ns_per_route"):
                fresh_v = lookup(fresh_route, (flavour, metric))
                committed_v = lookup(committed_route, (flavour, metric))
                if fresh_v is None or committed_v is None or committed_v <= 0:
                    print(f"check_bench: route {flavour} {metric}: missing "
                          f"in a snapshot, skipped")
                    continue
                ratio = fresh_v / committed_v
                verdict = ("OK" if ratio <= 1.0 + route_threshold
                           else "REGRESSION")
                print(f"check_bench: route {flavour} {metric}: "
                      f"committed={committed_v:.2f} fresh={fresh_v:.2f} "
                      f"ratio={ratio:.2f} {verdict}")
                if verdict != "OK":
                    failures.append(f"route.{flavour}.{metric}")
    else:
        missing_in = "fresh" if not isinstance(fresh_route, dict) \
            else "committed"
        print(f"check_bench: route section: not in the {missing_in} "
              f"snapshot, skipped")

    # The large_graph section's absolute timings (the speedup ratio gated
    # above, machine-independently). Cold opens are a few milliseconds and
    # cross-shard queries hit the boundary-pair table, so both jitter more
    # than the steady-state microbenches — gate at the route section's
    # relaxed threshold. Skipped, never failed, when the section is missing
    # on either side.
    if isinstance(fresh_lg, dict) and isinstance(committed_lg, dict):
        for metric in ("cold_open_heap_ms", "cold_open_mmap_ms",
                       "mono_query_ns", "sharded_query_ns"):
            fresh_v = lookup(fresh_lg, (metric,))
            committed_v = lookup(committed_lg, (metric,))
            if fresh_v is None or committed_v is None or committed_v <= 0:
                print(f"check_bench: large_graph {metric}: missing in a "
                      f"snapshot, skipped")
                continue
            ratio = fresh_v / committed_v
            verdict = ("OK" if ratio <= 1.0 + route_threshold
                       else "REGRESSION")
            print(f"check_bench: large_graph {metric}: "
                  f"committed={committed_v:.2f} fresh={fresh_v:.2f} "
                  f"ratio={ratio:.2f} {verdict}")
            if verdict != "OK":
                failures.append(f"large_graph.{metric}")
    else:
        missing_in = "fresh" if not isinstance(fresh_lg, dict) \
            else "committed"
        print(f"check_bench: large_graph section: not in the {missing_in} "
              f"snapshot, skipped")

    # The server_load section's absolute numbers (the coalesce ratio gated
    # above, machine-independently). End-to-end TCP serving throughput and
    # tail latency jitter like the route section does on a shared box, so
    # both directions gate at the relaxed threshold. qps metrics are
    # higher-is-better; the latency/wall-clock ones lower-is-better.
    if isinstance(fresh_sl, dict) and isinstance(committed_sl, dict):
        for metric, lower_is_better in (
                ("qps_coalesced", False), ("qps_uncoalesced", False),
                ("batch_qps", False), ("burst_p50_us", True),
                ("burst_p99_us", True), ("matrix_ms", True),
                ("stream_matrix_ms", True)):
            fresh_v = lookup(fresh_sl, (metric,))
            committed_v = lookup(committed_sl, (metric,))
            if fresh_v is None or committed_v is None or committed_v <= 0:
                print(f"check_bench: server_load {metric}: missing in a "
                      f"snapshot, skipped")
                continue
            ratio = fresh_v / committed_v
            if lower_is_better:
                ok = ratio <= 1.0 + route_threshold
            else:
                ok = ratio >= 1.0 - route_threshold
            verdict = "OK" if ok else "REGRESSION"
            print(f"check_bench: server_load {metric}: "
                  f"committed={committed_v:.2f} fresh={fresh_v:.2f} "
                  f"ratio={ratio:.2f} {verdict}")
            if verdict != "OK":
                failures.append(f"server_load.{metric}")
    else:
        missing_in = "fresh" if not isinstance(fresh_sl, dict) \
            else "committed"
        print(f"check_bench: server_load section: not in the {missing_in} "
              f"snapshot, skipped")

    if failures:
        print(f"check_bench: FAILED — >{args.threshold:.0%} regression in: "
              + ", ".join(failures))
        return 1
    print("check_bench: all gated metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
