// hc2l — command-line front end for the library, programmed entirely
// against the public facade (hc2l/hc2l.h).
//
// Subcommands:
//   hc2l generate --rows R --cols C [--seed S] [--travel-time]
//                 [--pendant-frac F] [--oneway-frac F] --out network.gr
//   hc2l generate --model road --vertices N [--seed S] [...] --out network.gr
//       Emit a synthetic road network in DIMACS .gr format. With
//       --oneway-frac F > 0 the network is directed (F of the streets are
//       one-way) and every arc is written individually. --model road sizes
//       the grid from a target vertex count instead of explicit --rows/
//       --cols: the square backbone closest to N vertices after pendant
//       attachment (seed-reproducible — same N, seed and fractions, same
//       network).
//
//   hc2l build --graph network.gr --out index.hc2l [--directed]
//              [--beta B] [--leaf-size L] [--threads T]
//              [--no-tail-pruning] [--no-contraction]
//       Build an HC2L index from a DIMACS graph and serialize it. With
//       --directed the arcs are kept one-way and the Section 5.3 directed
//       index is built (format HC2D0002; HC2D0001 with --no-contraction);
//       otherwise arcs collapse to undirected edges (format HC2L0002).
//       --no-contraction disables degree-one contraction in both flavours.
//
//   hc2l shard --graph network.gr --out index.hc2s [--shards N]
//              [--directed] [--beta B] [--leaf-size L] [--threads T]
//       Partition the graph into N shards (recursive balanced cuts), build
//       one HC2L index per shard plus the boundary-pair distance table, and
//       write an HC2S0001 manifest (with the per-shard index files next to
//       it as index.hc2s.0, .1, ...). The manifest opens through every
//       --index flag below and answers bit-identically to a monolithic
//       index over the same graph.
//
//   hc2l query --index index.hc2l [--pairs pairs.txt] [--threads T] [--mmap]
//       Answer distance queries. The index format is sniffed by
//       Router::Open, so the same subcommand serves undirected and directed
//       indexes. Pairs come from --pairs (two 1-based vertex ids per line)
//       or stdin; "s t" -> prints d(s, t) or "inf". With --threads T (or
//       T = 0 for all cores) the pairs are answered by the parallel query
//       engine in input order; without it queries stream one at a time.
//       --mmap (also on route/stats/serve) opens the index with
//       OpenMode::kMmap: V4 label arenas are mapped in place instead of
//       deserialized.
//
//   hc2l route --index index.hc2l [--pairs pairs.txt] [--k K]
//       Unpack shortest paths. Pairs come from --pairs or stdin like query;
//       "s t" (1-based) -> one line "weight: v1 v2 ... vn" (1-based vertex
//       sequence) or "inf". With --k K >= 2 each pair prints up to K
//       alternative routes, best first. Needs a hint-carrying index
//       (HC2L0003/HC2D0003, the default build) — older files answer
//       distances only.
//
//   hc2l stats --index index.hc2l
//       Print construction and size statistics of a saved index (either
//       format).
//
//   hc2l serve --index index.hc2l [--port P] [--host H] [--threads T]
//       Serve the index over the hc2ld line-delimited-JSON TCP protocol
//       (docs/server.md). A smoke-test wrapper around the same QueryServer
//       the hc2ld daemon runs; prints the bound port and blocks.
//
//   hc2l client [--port P] [--host H] [--retry N]
//       Connect to a running hc2ld/serve instance, send each stdin line as
//       one request, print the matching response line. --retry N (default
//       50) retries the connect every 100 ms — handy right after starting
//       the server in the background. A matrix request with "stream":true
//       prints every frame of the chunked response, reassembles them
//       client-side, and reports the reassembled size on stderr (exit 1 on
//       an aborted or malformed stream).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "hc2l/hc2l.h"
#include "hc2l/server.h"
#include "server/wire.h"  // StreamReassembler: client-side stream frames
#include "shard/sharded_index.h"

namespace hc2l {
namespace {

/// Minimal flag parser: --name value or boolean --name.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  const char* Get(const char* name) const {
    for (int i = 2; i + 1 < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) return argv_[i + 1];
    }
    return nullptr;
  }

  bool Has(const char* name) const {
    for (int i = 2; i < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) return true;
    }
    return false;
  }

  double GetDouble(const char* name, double fallback) const {
    const char* v = Get(name);
    return v == nullptr ? fallback : std::atof(v);
  }

  long GetLong(const char* name, long fallback) const {
    const char* v = Get(name);
    return v == nullptr ? fallback : std::atol(v);
  }

 private:
  int argc_;
  char** argv_;
};

/// Validated --threads value: 0 = auto (all cores), else [1, 256]. Returns
/// false (with a message) for negative or absurd values instead of letting a
/// wrapped cast ask for ~4 billion threads.
bool GetThreads(const Args& args, uint32_t* threads) {
  const long value = args.GetLong("--threads", 0);
  if (value < 0 || value > 256) {
    std::fprintf(stderr, "error: --threads must be in [0, 256], got %ld\n",
                 value);
    return false;
  }
  *threads = static_cast<uint32_t>(value);
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Open for every --index consumer: --mmap selects OpenMode::kMmap.
Result<Router> OpenIndex(const Args& args, const char* index_path) {
  return Router::Open(index_path,
                      args.Has("--mmap") ? OpenMode::kMmap : OpenMode::kHeap);
}

int Usage() {
  std::fprintf(stderr,
               "usage: hc2l <generate|build|shard|query|route|stats|serve|"
               "client> [options]\n"
               "  generate --rows R --cols C --out FILE [--seed S] "
               "[--travel-time] [--pendant-frac F] [--oneway-frac F]\n"
               "  generate --model road --vertices N --out FILE [--seed S] "
               "[--travel-time] [--pendant-frac F] [--oneway-frac F]\n"
               "  build    --graph FILE --out FILE [--directed] [--beta B] "
               "[--leaf-size L] [--threads T] [--no-tail-pruning] "
               "[--no-contraction]\n"
               "  shard    --graph FILE --out FILE [--shards N] [--directed] "
               "[--beta B] [--leaf-size L] [--threads T]\n"
               "  query    --index FILE [--pairs FILE] [--threads T] "
               "[--mmap]\n"
               "  route    --index FILE [--pairs FILE] [--k K] [--mmap]\n"
               "  stats    --index FILE [--mmap]\n"
               "  serve    --index FILE [--port P] [--host H] [--threads T] "
               "[--mmap]\n"
               "  client   [--port P] [--host H] [--retry N]\n");
  return 2;
}

int RunGenerate(const Args& args) {
  const char* out = args.Get("--out");
  if (out == nullptr) return Usage();
  RoadNetworkOptions options;
  options.rows = static_cast<uint32_t>(args.GetLong("--rows", 64));
  options.cols = static_cast<uint32_t>(args.GetLong("--cols", 64));
  options.seed = static_cast<uint64_t>(args.GetLong("--seed", 1));
  options.pendant_frac = args.GetDouble("--pendant-frac", 0.3);
  options.weight_mode = args.Has("--travel-time") ? WeightMode::kTravelTime
                                                  : WeightMode::kDistance;
  if (const char* model = args.Get("--model"); model != nullptr) {
    if (std::strcmp(model, "road") != 0) {
      std::fprintf(stderr, "error: unknown --model \"%s\" (only: road)\n",
                   model);
      return 2;
    }
    const long vertices = args.GetLong("--vertices", 0);
    if (vertices < 4) {
      std::fprintf(stderr,
                   "error: --model road needs --vertices N (N >= 4)\n");
      return 2;
    }
    options = RoadNetworkOptionsForVertices(
        static_cast<uint64_t>(vertices), options);
  }
  const double oneway_frac = args.GetDouble("--oneway-frac", 0.0);
  if (oneway_frac < 0.0 || oneway_frac > 1.0) {
    std::fprintf(stderr, "error: --oneway-frac must be in [0, 1]\n");
    return 2;
  }
  if (oneway_frac > 0.0) {
    const Digraph g = GenerateDirectedRoadNetwork(options, oneway_frac);
    if (Status s = WriteDimacsDigraph(g, out); !s.ok()) return Fail(s);
    std::printf("wrote %s: %zu vertices, %zu arcs (directed)\n", out,
                g.NumVertices(), g.NumArcs());
    return 0;
  }
  const Graph g = GenerateRoadNetwork(options);
  if (Status s = WriteDimacsGraph(g, out); !s.ok()) return Fail(s);
  std::printf("wrote %s: %zu vertices, %zu edges\n", out, g.NumVertices(),
              g.NumEdges());
  return 0;
}

int RunBuild(const Args& args) {
  const char* graph_path = args.Get("--graph");
  const char* out = args.Get("--out");
  if (graph_path == nullptr || out == nullptr) return Usage();
  BuildOptions options;
  options.beta = args.GetDouble("--beta", 0.2);
  options.leaf_size = static_cast<uint32_t>(args.GetLong("--leaf-size", 8));
  // Same contract as query: 0 = all cores (the facade resolves it). The
  // default stays 1 thread.
  uint32_t threads = 1;
  if (args.Has("--threads") && !GetThreads(args, &threads)) return 2;
  options.num_threads = threads;
  options.tail_pruning = !args.Has("--no-tail-pruning");
  options.contract_degree_one = !args.Has("--no-contraction");

  Timer timer;
  Result<Router> router = [&]() -> Result<Router> {
    if (args.Has("--directed")) {
      Result<Digraph> graph = ReadDimacsDigraph(graph_path);
      if (!graph.ok()) return graph.status();
      return Router::Build(*graph, options);
    }
    Result<Graph> graph = ReadDimacsGraph(graph_path);
    if (!graph.ok()) return graph.status();
    return Router::Build(*graph, options);
  }();
  if (!router.ok()) return Fail(router.status());

  const IndexInfo info = router->Info();
  std::printf(
      "built %s index in %.2fs: core=%llu/%llu height=%u max_cut=%llu "
      "labels=%s\n",
      info.directed ? "directed" : "undirected", timer.Seconds(),
      static_cast<unsigned long long>(info.num_core_vertices),
      static_cast<unsigned long long>(info.num_vertices), info.tree_height,
      static_cast<unsigned long long>(info.max_cut_size),
      std::to_string(info.label_resident_bytes).c_str());
  if (Status s = router->Save(out); !s.ok()) return Fail(s);
  std::printf("saved %s\n", out);
  return 0;
}

int RunShard(const Args& args) {
  const char* graph_path = args.Get("--graph");
  const char* out = args.Get("--out");
  if (graph_path == nullptr || out == nullptr) return Usage();
  ShardOptions options;
  const long shards = args.GetLong("--shards", 2);
  if (shards < 1 || shards > 4096) {
    std::fprintf(stderr, "error: --shards must be in [1, 4096], got %ld\n",
                 shards);
    return 2;
  }
  options.num_shards = static_cast<uint32_t>(shards);
  options.build_beta = args.GetDouble("--beta", 0.2);
  options.leaf_size = static_cast<uint32_t>(args.GetLong("--leaf-size", 8));
  uint32_t threads = 1;
  if (args.Has("--threads") && !GetThreads(args, &threads)) return 2;
  options.num_threads = threads;

  Timer timer;
  Result<ShardedIndex> index = [&]() -> Result<ShardedIndex> {
    if (args.Has("--directed")) {
      Result<Digraph> graph = ReadDimacsDigraph(graph_path);
      if (!graph.ok()) return graph.status();
      return ShardedIndex::Build(*graph, options);
    }
    Result<Graph> graph = ReadDimacsGraph(graph_path);
    if (!graph.ok()) return graph.status();
    return ShardedIndex::Build(*graph, options);
  }();
  if (!index.ok()) return Fail(index.status());
  std::printf(
      "sharded %s index in %.2fs: %zu shards, %zu vertices, %zu boundary "
      "vertices\n",
      index->directed() ? "directed" : "undirected", timer.Seconds(),
      index->NumShards(), index->NumVertices(), index->NumBoundaryVertices());
  if (Status s = index->Save(out); !s.ok()) return Fail(s);
  std::printf("saved %s (+ %zu shard files)\n", out, index->NumShards());
  return 0;
}

int RunQuery(const Args& args) {
  const char* index_path = args.Get("--index");
  if (index_path == nullptr) return Usage();
  Result<Router> router = OpenIndex(args, index_path);
  if (!router.ok()) return Fail(router.status());
  std::FILE* in = stdin;
  const char* pairs_path = args.Get("--pairs");
  if (pairs_path != nullptr) {
    in = std::fopen(pairs_path, "r");
    if (in == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", pairs_path);
      return 1;
    }
  }
  const unsigned long long n = router->NumVertices();
  const auto print_dist = [](Dist d) {
    if (d == kInfDist) {
      std::printf("inf\n");
    } else {
      std::printf("%llu\n", static_cast<unsigned long long>(d));
    }
  };

  unsigned long long s = 0;
  unsigned long long t = 0;
  if (!args.Has("--threads")) {
    // Streaming mode: answer each pair as it arrives (stdin-friendly).
    while (std::fscanf(in, "%llu %llu", &s, &t) == 2) {
      if (s < 1 || t < 1 || s > n || t > n) {
        std::printf("out-of-range\n");
        continue;
      }
      print_dist(router->DistanceUnchecked(static_cast<Vertex>(s - 1),
                                           static_cast<Vertex>(t - 1)));
    }
    if (in != stdin) std::fclose(in);
    return 0;
  }

  // Engine mode: read every pair, shard them across the pool, print in
  // input order. Out-of-range pairs keep their line position.
  ParallelOptions parallel_options;
  if (!GetThreads(args, &parallel_options.num_threads)) {
    if (in != stdin) std::fclose(in);
    return 2;
  }
  std::vector<std::pair<Vertex, Vertex>> pairs;
  std::vector<uint8_t> in_range;
  while (std::fscanf(in, "%llu %llu", &s, &t) == 2) {
    const bool ok = s >= 1 && t >= 1 && s <= n && t <= n;
    in_range.push_back(ok ? 1 : 0);
    pairs.emplace_back(ok ? static_cast<Vertex>(s - 1) : 0,
                       ok ? static_cast<Vertex>(t - 1) : 0);
  }
  if (in != stdin) std::fclose(in);

  Result<ThreadedRouter> engine = router->WithThreads(parallel_options);
  if (!engine.ok()) return Fail(engine.status());
  Result<std::vector<Dist>> dists = engine->PointQueries(pairs);
  if (!dists.ok()) return Fail(dists.status());
  for (size_t i = 0; i < dists->size(); ++i) {
    if (in_range[i] == 0) {
      std::printf("out-of-range\n");
    } else {
      print_dist((*dists)[i]);
    }
  }
  return 0;
}

int RunRoute(const Args& args) {
  const char* index_path = args.Get("--index");
  if (index_path == nullptr) return Usage();
  const long k = args.GetLong("--k", 1);
  if (k < 1 || k > 64) {
    std::fprintf(stderr, "error: --k must be in [1, 64], got %ld\n", k);
    return 2;
  }
  Result<Router> router = OpenIndex(args, index_path);
  if (!router.ok()) return Fail(router.status());

  std::FILE* in = stdin;
  const char* pairs_path = args.Get("--pairs");
  if (pairs_path != nullptr) {
    in = std::fopen(pairs_path, "r");
    if (in == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", pairs_path);
      return 1;
    }
  }
  const unsigned long long n = router->NumVertices();
  // "weight: v1 v2 ... vn" with the CLI's 1-based DIMACS ids, like query.
  const auto print_route = [](const RoutePath& route) {
    if (route.weight == kInfDist) {
      std::printf("inf\n");
      return;
    }
    std::printf("%llu:", static_cast<unsigned long long>(route.weight));
    for (const Vertex v : route.vertices) {
      std::printf(" %llu", static_cast<unsigned long long>(v) + 1);
    }
    std::printf("\n");
  };

  unsigned long long s = 0;
  unsigned long long t = 0;
  RoutePath route;
  int status = 0;
  while (std::fscanf(in, "%llu %llu", &s, &t) == 2) {
    if (s < 1 || t < 1 || s > n || t > n) {
      std::printf("out-of-range\n");
      continue;
    }
    const Vertex from = static_cast<Vertex>(s - 1);
    const Vertex to = static_cast<Vertex>(t - 1);
    if (k == 1) {
      if (const Status st = router->Route(from, to, &route); !st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        status = 1;
        break;
      }
      print_route(route);
      continue;
    }
    const Result<std::vector<RoutePath>> alts =
        router->Routes(from, to, static_cast<size_t>(k));
    if (!alts.ok()) {
      std::fprintf(stderr, "error: %s\n", alts.status().ToString().c_str());
      status = 1;
      break;
    }
    if (alts->empty()) {
      std::printf("inf\n");
      continue;
    }
    for (const RoutePath& alt : *alts) print_route(alt);
  }
  if (in != stdin) std::fclose(in);
  return status;
}

int RunStats(const Args& args) {
  const char* index_path = args.Get("--index");
  if (index_path == nullptr) return Usage();
  Result<Router> router = OpenIndex(args, index_path);
  if (!router.ok()) return Fail(router.status());
  const IndexInfo s = router->Info();
  std::printf("flavour:         %s\n", s.directed ? "directed" : "undirected");
  std::printf("vertices:        %llu\n",
              static_cast<unsigned long long>(s.num_vertices));
  std::printf("core vertices:   %llu (%llu contracted)\n",
              static_cast<unsigned long long>(s.num_core_vertices),
              static_cast<unsigned long long>(s.num_contracted));
  std::printf("tree height:     %u\n", s.tree_height);
  std::printf("tree nodes:      %llu\n",
              static_cast<unsigned long long>(s.num_tree_nodes));
  std::printf("max cut size:    %llu\n",
              static_cast<unsigned long long>(s.max_cut_size));
  std::printf("avg cut size:    %.2f\n", s.avg_cut_size);
  std::printf("shortcuts:       %llu\n",
              static_cast<unsigned long long>(s.num_shortcuts));
  std::printf("label entries:   %llu\n",
              static_cast<unsigned long long>(s.label_entries));
  // "label bytes" keeps its historical meaning (the paper-comparable
  // logical size); the padded in-memory footprint gets its own line.
  std::printf("label bytes:     %llu\n",
              static_cast<unsigned long long>(s.label_logical_bytes));
  std::printf("resident bytes:  %llu\n",
              static_cast<unsigned long long>(s.label_resident_bytes));
  std::printf("lca bytes:       %llu\n",
              static_cast<unsigned long long>(s.lca_bytes));
  std::printf("mapped bytes:    %llu\n",
              static_cast<unsigned long long>(s.mapped_bytes));
  std::printf("heap bytes:      %llu\n",
              static_cast<unsigned long long>(s.heap_bytes));
  if (s.num_shards > 0) {
    std::printf("shards:          %llu\n",
                static_cast<unsigned long long>(s.num_shards));
  }
  std::printf("build seconds:   %.3f\n", s.build_seconds);
  return 0;
}

int RunServe(const Args& args) {
  const char* index_path = args.Get("--index");
  if (index_path == nullptr) return Usage();
  ServerOptions options;
  if (const char* host = args.Get("--host"); host != nullptr) {
    options.host = host;
  }
  const long port = args.GetLong("--port", 0);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "error: --port must be in [0, 65535]\n");
    return 2;
  }
  options.port = static_cast<uint16_t>(port);
  uint32_t threads = 0;
  if (args.Has("--threads") && !GetThreads(args, &threads)) return 2;
  options.num_threads = threads;

  Result<Router> router = OpenIndex(args, index_path);
  if (!router.ok()) return Fail(router.status());
  Result<QueryServer> server = QueryServer::Start(*router, options);
  if (!server.ok()) return Fail(server.status());
  std::printf("hc2l serve: listening on %s:%u (%s)\n", options.host.c_str(),
              server->port(), router->directed() ? "directed" : "undirected");
  std::fflush(stdout);
  server->Wait();  // until the process is killed
  return 0;
}

int RunClient(const Args& args) {
  const char* host = args.Get("--host");
  if (host == nullptr) host = "127.0.0.1";
  const long port = args.GetLong("--port", 0);
  if (port < 1 || port > 65535) {
    std::fprintf(stderr, "error: client needs --port in [1, 65535]\n");
    return 2;
  }
  const long retries = std::max(1L, args.GetLong("--retry", 50));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    std::fprintf(stderr, "error: cannot parse host \"%s\" (expected IPv4)\n",
                 host);
    return 2;
  }
  int fd = -1;
  for (long attempt = 0; attempt < retries; ++attempt) {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      break;
    }
    close(fd);
    fd = -1;
    usleep(100'000);  // the server may still be starting up
  }
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s:%ld\n", host, port);
    return 1;
  }

  // One request line in, one response line out, in order.
  std::string response_buf;
  char line[1 << 16];
  int status = 0;
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    size_t len = std::strlen(line);
    // Skip lines the server will not answer (it ignores all-whitespace
    // lines, incl. CRLF blanks) — sending one would leave us waiting for a
    // response that never comes.
    if (std::strspn(line, " \t\r\n") == len) continue;
    if (line[len - 1] != '\n') {
      line[len] = '\n';  // fgets guarantees room: len < sizeof(line)
      ++len;
    }
    size_t sent = 0;
    while (sent < len) {
      const ssize_t n = send(fd, line + sent, len - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        std::fprintf(stderr, "error: connection closed while sending\n");
        close(fd);
        return 1;
      }
      sent += static_cast<size_t>(n);
    }
    const auto read_response_line = [&](std::string* out) {
      size_t nl;
      while ((nl = response_buf.find('\n')) == std::string::npos) {
        char buf[8192];
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;
        response_buf.append(buf, static_cast<size_t>(n));
      }
      out->assign(response_buf, 0, nl);
      response_buf.erase(0, nl + 1);
      return true;
    };
    // A streamed matrix request ("stream":true) answers with SEVERAL
    // response lines: header, chunk frames, trailer. Detect it on the
    // request side (whitespace-insensitively) and reassemble client-side;
    // every other request gets exactly one response line.
    std::string compact;
    for (size_t i = 0; i < len; ++i) {
      if (line[i] != ' ' && line[i] != '\t') compact.push_back(line[i]);
    }
    const bool streamed = compact.find("\"stream\":true") != std::string::npos;
    if (streamed) {
      StreamReassembler stream;
      std::string frame;
      for (;;) {
        if (!read_response_line(&frame)) {
          std::fprintf(stderr, "error: connection closed mid-stream\n");
          close(fd);
          return 1;
        }
        std::printf("%s\n", frame.c_str());
        std::fflush(stdout);
        const Status fed = stream.Feed(frame);
        if (!fed.ok()) {
          // Covers both malformed frames and a server-side mid-stream
          // abort ({"ok":false,...} instead of the trailer).
          std::fprintf(stderr, "error: stream aborted: %s\n",
                       fed.ToString().c_str());
          close(fd);
          return 1;
        }
        if (stream.done()) break;
      }
      std::fprintf(stderr,
                   "stream reassembled: %llu x %llu matrix, %llu chunks, "
                   "%zu entries\n",
                   static_cast<unsigned long long>(stream.rows()),
                   static_cast<unsigned long long>(stream.cols()),
                   static_cast<unsigned long long>(stream.chunks()),
                   stream.distances().size());
      continue;
    }
    std::string response;
    if (!read_response_line(&response)) {
      std::fprintf(stderr, "error: connection closed before a response\n");
      close(fd);
      return 1;
    }
    std::printf("%s\n", response.c_str());
    std::fflush(stdout);
    // Non-zero exit when any response reports failure, so scripts can
    // assert a whole session succeeded.
    if (response.compare(0, 11, "{\"ok\":false") == 0) status = 1;
  }
  close(fd);
  return status;
}

}  // namespace
}  // namespace hc2l

int main(int argc, char** argv) {
  if (argc < 2) return hc2l::Usage();
  const std::string command = argv[1];
  const hc2l::Args args(argc, argv);
  if (command == "generate") return hc2l::RunGenerate(args);
  if (command == "build") return hc2l::RunBuild(args);
  if (command == "shard") return hc2l::RunShard(args);
  if (command == "query") return hc2l::RunQuery(args);
  if (command == "route") return hc2l::RunRoute(args);
  if (command == "stats") return hc2l::RunStats(args);
  if (command == "serve") return hc2l::RunServe(args);
  if (command == "client") return hc2l::RunClient(args);
  return hc2l::Usage();
}
