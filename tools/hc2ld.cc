// hc2ld — the HC2L serving daemon: opens a serialized index (either format,
// sniffed by Router::Open) and serves line-delimited-JSON distance queries
// over TCP.
//
//   hc2ld --index city.idx --port 8040 [--host 127.0.0.1] [--threads 0]
//         [--workers 0] [--no-coalesce] [--graph city.gr]
//         [--max-connections N] [--max-in-flight N]
//         [--drain-ms MS] [--idle-timeout-ms MS] [--read-timeout-ms MS]
//         [--max-requests-per-connection N]
//
// Prints one "hc2ld listening on HOST:PORT ..." line once ready (stdout,
// flushed — scripts can wait for it), then blocks. --port 0 binds an
// ephemeral port and prints the actual one. Wire protocol: docs/server.md;
// smoke-test counterpart: `hc2l client`.
//
// Signals (the systemd/Kubernetes lifecycle):
//   SIGTERM  graceful drain: stop accepting, answer every request already
//            received, exit 0 — within --drain-ms (default 5000), after
//            which stragglers are cut and the exit code is still 0.
//   SIGINT   immediate stop (Ctrl-C): disconnect everyone, exit 0.
//   SIGHUP   hot reload: reopen --index into a fresh serving snapshot and
//            swap it in; on any error the old index keeps serving and the
//            failure is logged to stderr. Same swap as the wire's
//            {"op":"reload"}.
//
// --graph names the DIMACS graph the index was built from; it enables the
// {"op":"update_weights"} wire verb (live scoped label repair) and is
// re-read on every reload so weight updates keep working across index
// swaps. Without it, update_weights requests fail with FailedPrecondition
// while everything else serves normally.

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graph/dimacs_io.h"
#include "hc2l/hc2l.h"
#include "hc2l/server.h"

namespace {

// Self-pipe: the signal handler only writes one byte naming the signal; the
// main thread blocks on the read end and performs the actual (not
// async-signal-safe) drain/stop/reload.
int g_signal_pipe[2] = {-1, -1};

constexpr char kByteTerm = 't';
constexpr char kByteInt = 'i';
constexpr char kByteHup = 'h';

void WriteSignalByte(char byte) {
  // Best effort; a full pipe means enough shutdown bytes are pending.
  [[maybe_unused]] const ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

void OnTerm(int) { WriteSignalByte(kByteTerm); }
void OnInt(int) { WriteSignalByte(kByteInt); }
void OnHup(int) { WriteSignalByte(kByteHup); }

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Parses a non-negative integer flag into *out; false (with a message) on
/// a malformed or out-of-range value.
bool UintFlag(int argc, char** argv, const char* name, long max, long* out) {
  const char* value = FlagValue(argc, argv, name);
  if (value == nullptr) return true;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0 || parsed > max) {
    std::fprintf(stderr, "error: %s must be an integer in [0, %ld]\n", name,
                 max);
    return false;
  }
  *out = parsed;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: hc2ld --index FILE [--port P] [--host H] [--threads T]\n"
      "             [--workers W] [--no-coalesce] [--mmap] [--graph FILE]\n"
      "             [--max-connections N] [--max-in-flight N]\n"
      "             [--idle-timeout-ms MS] [--read-timeout-ms MS]\n"
      "             [--max-requests-per-connection N] [--drain-ms MS]\n"
      "  --graph enables the update_weights op (live weight repair) by\n"
      "  attaching the DIMACS graph the index was built from.\n"
      "  --mmap maps V4/sharded label arenas in place (OpenMode::kMmap),\n"
      "  for open and for every reload.\n"
      "  --port 0 (default) binds an ephemeral port; the chosen port is "
      "printed.\n"
      "  --threads 0 (default) uses all hardware threads for the shared "
      "query engine.\n"
      "  --workers 0 (default) sizes the reactor worker pool automatically;\n"
      "  --no-coalesce disables merging small concurrent point/batch "
      "requests.\n"
      "  Limit flags default to the library's ServerLimits; 0 disables the "
      "limit.\n"
      "  SIGTERM drains gracefully within --drain-ms (default 5000); "
      "SIGHUP hot-reloads --index.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* index_path = FlagValue(argc, argv, "--index");
  if (index_path == nullptr) return Usage();

  hc2l::ServerOptions options;
  options.index_path = index_path;  // the "reload" op / SIGHUP target
  if (const char* host = FlagValue(argc, argv, "--host"); host != nullptr) {
    options.host = host;
  }
  long port = options.port;
  long threads = options.num_threads;
  long workers = options.reactor_threads;
  long max_connections = options.limits.max_connections;
  long max_in_flight = options.limits.max_in_flight;
  long idle_timeout_ms = options.limits.idle_timeout_ms;
  long read_timeout_ms = options.limits.read_timeout_ms;
  long max_requests = 0;
  long drain_ms = 5000;
  if (!UintFlag(argc, argv, "--port", 65535, &port) ||
      !UintFlag(argc, argv, "--threads", 4096, &threads) ||
      !UintFlag(argc, argv, "--workers", 4096, &workers) ||
      !UintFlag(argc, argv, "--max-connections", 1 << 30, &max_connections) ||
      !UintFlag(argc, argv, "--max-in-flight", 1 << 30, &max_in_flight) ||
      !UintFlag(argc, argv, "--idle-timeout-ms", 1 << 30,
                &idle_timeout_ms) ||
      !UintFlag(argc, argv, "--read-timeout-ms", 1 << 30,
                &read_timeout_ms) ||
      !UintFlag(argc, argv, "--max-requests-per-connection", 1 << 30,
                &max_requests) ||
      !UintFlag(argc, argv, "--drain-ms", 1 << 30, &drain_ms)) {
    return 2;
  }
  options.port = static_cast<uint16_t>(port);
  options.num_threads = static_cast<uint32_t>(threads);
  options.reactor_threads = static_cast<uint32_t>(workers);
  options.coalesce = !HasFlag(argc, argv, "--no-coalesce");
  options.limits.max_connections = static_cast<uint32_t>(max_connections);
  options.limits.max_in_flight = static_cast<uint32_t>(max_in_flight);
  options.limits.idle_timeout_ms = static_cast<uint32_t>(idle_timeout_ms);
  options.limits.read_timeout_ms = static_cast<uint32_t>(read_timeout_ms);
  options.limits.max_requests_per_connection =
      static_cast<uint64_t>(max_requests);

  options.open_mmap = HasFlag(argc, argv, "--mmap");
  hc2l::Result<hc2l::Router> router = hc2l::Router::Open(
      index_path,
      options.open_mmap ? hc2l::OpenMode::kMmap : hc2l::OpenMode::kHeap);
  if (!router.ok()) {
    std::fprintf(stderr, "error: %s\n", router.status().ToString().c_str());
    return 1;
  }
  if (const char* graph_path = FlagValue(argc, argv, "--graph");
      graph_path != nullptr) {
    hc2l::Result<hc2l::Graph> graph = hc2l::ReadDimacsGraph(graph_path);
    if (!graph.ok()) {
      std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
      return 1;
    }
    router->AttachGraph(std::move(graph).value());
    options.graph_path = graph_path;  // re-attached on every reload
  }

  hc2l::Result<hc2l::QueryServer> server =
      hc2l::QueryServer::Start(*router, options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }

  if (pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "error: cannot create signal pipe\n");
    return 1;
  }
  std::signal(SIGINT, OnInt);
  std::signal(SIGTERM, OnTerm);
  std::signal(SIGHUP, OnHup);
  std::signal(SIGPIPE, SIG_IGN);

  const hc2l::IndexInfo info = router->Info();
  const std::string engine = options.num_threads == 0
                                 ? std::string("all-cores")
                                 : std::to_string(options.num_threads);
  std::printf("hc2ld listening on %s:%u (%s, %llu vertices, engine %s)\n",
              options.host.c_str(), server->port(),
              info.directed ? "directed" : "undirected",
              static_cast<unsigned long long>(info.num_vertices),
              engine.c_str());
  std::fflush(stdout);

  for (;;) {
    char byte = 0;
    const ssize_t n = read(g_signal_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) byte = kByteInt;  // pipe died: treat as a hard stop
    if (byte == kByteHup) {
      if (const hc2l::Status st = server->Reload(); st.ok()) {
        std::printf("hc2ld reloaded %s (epoch %llu)\n", index_path,
                    static_cast<unsigned long long>(server->epoch()));
        std::fflush(stdout);
      } else {
        // The old index keeps serving; a bad file on disk must not take
        // the daemon down.
        std::fprintf(stderr, "hc2ld reload failed, still serving epoch "
                             "%llu: %s\n",
                     static_cast<unsigned long long>(server->epoch()),
                     st.ToString().c_str());
        std::fflush(stderr);
      }
      continue;
    }
    if (byte == kByteTerm) {
      const bool drained =
          server->Drain(std::chrono::milliseconds(drain_ms));
      std::printf("hc2ld drained %s (%llu connections served)\n",
                  drained ? "cleanly" : "with stragglers cut",
                  static_cast<unsigned long long>(
                      server->connections_accepted()));
      return 0;
    }
    break;  // kByteInt: immediate stop
  }
  std::printf("hc2ld shutting down (%llu connections served)\n",
              static_cast<unsigned long long>(server->connections_accepted()));
  server->Stop();
  return 0;
}
