// hc2ld — the HC2L serving daemon: opens a serialized index (either format,
// sniffed by Router::Open) and serves line-delimited-JSON distance queries
// over TCP until SIGINT/SIGTERM.
//
//   hc2ld --index city.idx --port 8040 [--host 127.0.0.1] [--threads 0]
//
// Prints one "hc2ld listening on HOST:PORT ..." line once ready (stdout,
// flushed — scripts can wait for it), then blocks. --port 0 binds an
// ephemeral port and prints the actual one. Wire protocol: docs/server.md;
// smoke-test counterpart: `hc2l client`.

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hc2l/hc2l.h"
#include "hc2l/server.h"

namespace {

// Self-pipe: the signal handler only writes a byte; the main thread blocks
// on the read end and performs the actual (not async-signal-safe) Stop().
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 1;
  // Best effort; a full pipe means a shutdown is already pending.
  [[maybe_unused]] const ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

int Usage() {
  std::fprintf(stderr,
               "usage: hc2ld --index FILE [--port P] [--host H] "
               "[--threads T]\n"
               "  --port 0 (default) binds an ephemeral port; the chosen "
               "port is printed.\n"
               "  --threads 0 (default) uses all hardware threads for the "
               "shared query engine.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* index_path = FlagValue(argc, argv, "--index");
  if (index_path == nullptr) return Usage();

  hc2l::ServerOptions options;
  if (const char* host = FlagValue(argc, argv, "--host"); host != nullptr) {
    options.host = host;
  }
  if (const char* port = FlagValue(argc, argv, "--port"); port != nullptr) {
    const long value = std::atol(port);
    if (value < 0 || value > 65535) {
      std::fprintf(stderr, "error: --port must be in [0, 65535]\n");
      return 2;
    }
    options.port = static_cast<uint16_t>(value);
  }
  if (const char* threads = FlagValue(argc, argv, "--threads");
      threads != nullptr) {
    const long value = std::atol(threads);
    if (value < 0 || value > 4096) {
      std::fprintf(stderr, "error: --threads must be in [0, 4096]\n");
      return 2;
    }
    options.num_threads = static_cast<uint32_t>(value);
  }

  hc2l::Result<hc2l::Router> router = hc2l::Router::Open(index_path);
  if (!router.ok()) {
    std::fprintf(stderr, "error: %s\n", router.status().ToString().c_str());
    return 1;
  }

  hc2l::Result<hc2l::QueryServer> server =
      hc2l::QueryServer::Start(*router, options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }

  if (pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "error: cannot create signal pipe\n");
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);

  const hc2l::IndexInfo info = router->Info();
  const std::string engine = options.num_threads == 0
                                 ? std::string("all-cores")
                                 : std::to_string(options.num_threads);
  std::printf("hc2ld listening on %s:%u (%s, %llu vertices, engine %s)\n",
              options.host.c_str(), server->port(),
              info.directed ? "directed" : "undirected",
              static_cast<unsigned long long>(info.num_vertices),
              engine.c_str());
  std::fflush(stdout);

  char byte = 0;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("hc2ld shutting down (%llu connections served)\n",
              static_cast<unsigned long long>(server->connections_accepted()));
  server->Stop();
  return 0;
}
